"""Export the data behind every reproducible figure as CSV files.

``export_all`` runs the figure drivers at a given scale and writes one
CSV per figure into a directory, so the paper's plots can be redrawn
with any external tool (gnuplot, matplotlib, a spreadsheet) without
touching the simulator again.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..runner import Runner
from .export import (
    cdf_table,
    matrix_table,
    method_comparison_table,
    series_table,
    write_csv,
    write_figures_json,
)
from .report import ReportScale
from .section3 import (
    Section3Context,
    fig3_inconsistency_cdf,
    fig5_inner_cluster,
    fig6_ttl_inference,
)
from .section4 import (
    fig14_unicast_inconsistency,
    fig15_multicast_inconsistency,
    fig16_traffic_cost,
    fig17_cost_vs_ttl,
    fig20_network_size,
)
from .section5 import (
    fig22a_update_messages,
    fig24_inconsistency_observations,
    section5_config,
)

__all__ = ["export_all"]


def export_all(
    out_dir: str,
    scale: Optional[ReportScale] = None,
    runner: Optional[Runner] = None,
) -> List[str]:
    """Run the exportable figure drivers and write one CSV each, plus a
    ``figures.json`` manifest of every figure's ``to_dict()``.

    Returns the list of written paths.  Uses ``ReportScale.small`` by
    default; pass ``ReportScale.medium()`` for publication-grade runs.
    ``runner`` is threaded into the Section 4/5 sweeps.
    """
    scale = scale if scale is not None else ReportScale.small()
    if runner is None:
        runner = Runner()
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    figures: List = []  # every FigureResult produced, for the manifest

    def emit(name: str, table) -> None:
        written.append(write_csv(os.path.join(out_dir, name), table))

    def keep(figure):
        figures.append(figure)
        return figure

    # --- Section 3 -----------------------------------------------------
    ctx = Section3Context(scale.section3, n_users=scale.n_users)
    f3 = keep(fig3_inconsistency_cdf(ctx))
    emit("fig03_inconsistency_cdf.csv",
         cdf_table(f3.cdf_points, "inconsistency_s"))
    f5 = keep(fig5_inner_cluster(ctx))
    emit("fig05_inner_cluster_cdf.csv",
         cdf_table(f5.cdf_points, "inconsistency_s"))
    f6 = keep(fig6_ttl_inference(ctx))
    emit("fig06_ttl_deviation_curve.csv",
         series_table(dict(f6.inference.curve), "candidate_ttl_s", "deviation"))

    # --- Section 4 -----------------------------------------------------
    f14 = keep(fig14_unicast_inconsistency(scale.section4, runner=runner))
    emit("fig14_unicast_server_lags.csv", method_comparison_table(f14))
    f15 = keep(fig15_multicast_inconsistency(scale.section4, runner=runner))
    emit("fig15_multicast_server_lags.csv", method_comparison_table(f15))
    f16 = keep(fig16_traffic_cost(scale.section4, runner=runner))
    cost_matrix: Dict[str, Dict[float, float]] = {}
    for (method, infra), cost in f16.costs.items():
        cost_matrix.setdefault("%s_%s" % (method, infra), {})[0.0] = cost
    emit("fig16_traffic_cost.csv", matrix_table(cost_matrix, "row"))
    f17 = keep(fig17_cost_vs_ttl(scale.sweep, ttls_s=(10.0, 30.0, 60.0), runner=runner))
    emit("fig17_cost_vs_ttl.csv", matrix_table(f17, "ttl_s"))
    sizes = tuple(int(scale.sweep.n_servers * f) for f in (1, 3, 5))
    f20 = keep(fig20_network_size(scale.sweep, n_servers=sizes, runner=runner))
    flat20 = {
        "%s_%s" % (infra, method): {float(n): lag for n, lag in per.items()}
        for infra, methods in f20.items()
        for method, per in methods.items()
    }
    emit("fig20_network_size.csv", matrix_table(flat20, "n_servers"))

    # --- Section 5 -----------------------------------------------------
    s5 = section5_config(scale.sweep)
    f22a = keep(fig22a_update_messages(s5, user_ttls_s=(10.0, 30.0, 60.0), runner=runner))
    emit("fig22a_update_messages.csv", matrix_table(f22a.counts, "user_ttl_s"))
    f24 = keep(
        fig24_inconsistency_observations(s5, user_ttls_s=(10.0, 30.0, 60.0), runner=runner)
    )
    emit("fig24_stale_observations.csv", matrix_table(f24, "user_ttl_s"))

    written.append(
        write_figures_json(os.path.join(out_dir, "figures.json"), figures)
    )
    return written
