"""Build and run one simulated-CDN deployment (the Section 4/5 testbed).

A *deployment* is a fully wired simulation: topology + fabric + content +
provider + servers (with an update-method policy) + end users, run to a
horizon and summarised into :class:`DeploymentMetrics`.

Two entry points:

- :func:`build_deployment` -- one update method on one infrastructure
  (the Section 4 grid: {push, invalidation, ttl, self-adaptive,
  adaptive-ttl} x {unicast, multicast, broadcast});
- :func:`build_system` -- the Section 5 named systems, adding ``self``
  (self-adaptive on unicast), ``hybrid`` (HAT infrastructure with plain
  TTL members) and ``hat`` (the full proposal).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cdn.client import EndUserActor, FixedSelector, SwitchEveryVisitSelector
from ..cdn.cohort import UserCohort, legacy_users_enabled
from ..cdn.content import LiveContent
from ..cdn.provider import ProviderActor
from ..cdn.server import ServerActor
from ..consistency.registry import (
    infrastructure_names,
    method_names,
    resolve_infrastructure,
    resolve_method,
)
from ..core.hat import HatConfig, HatSystem
from ..metrics.consistency import (
    mean_update_lag,
    stale_observation_fraction,
)
from ..metrics.incremental import (
    AggregateUserMetrics,
    ServerLagTracker,
    UserObservationTracker,
    aggregate_user_rollup,
)
from ..metrics.timeseries import StalenessSeries, StalenessSeriesCache
from ..metrics.traffic import TrafficLedger
from ..network.link import NetworkFabric
from ..network.message import reset_seq
from ..network.node import NetworkNode
from ..network.topology import Topology, TopologyBuilder
from ..obs.counters import staleness_histogram
from ..obs.telemetry import TELEMETRY, span
from ..obs.tracer import Tracer
from ..sim.engine import Environment
from ..sim.rng import StreamRegistry
from ..trace.workload import LiveGameWorkload
from .config import TestbedConfig

__all__ = [
    "METHODS",
    "INFRASTRUCTURES",
    "SYSTEMS",
    "Deployment",
    "DeploymentMetrics",
    "build_deployment",
    "build_system",
]

#: Canonical name lists, derived from the consistency registry (the CLI
#: and the sweep runner resolve through the same table).
METHODS = method_names()
INFRASTRUCTURES = infrastructure_names()
#: Section 5 systems (Figs. 22-24).
SYSTEMS = ("push", "invalidation", "ttl", "self", "hybrid", "hat")


@dataclass
class DeploymentMetrics:
    """Everything the figure drivers read off one finished run."""

    name: str
    server_lags: Dict[str, float]
    user_lags: Dict[str, float]
    user_stale_fractions: Dict[str, float]
    cost_km_kb: float
    update_messages: int
    light_messages: int
    #: Fig. 22 metric: bodies + poll responses ("update messages" in the
    #: paper's Section 5 accounting).
    response_messages: int
    provider_response_messages: int
    update_load_km: float
    light_load_km: float
    #: Fig. 23 loads under the response-inclusive split.
    response_load_km: float
    request_load_km: float
    provider_update_messages: int
    provider_messages: int
    #: Events the simulation kernel processed to produce this run
    #: (exposed so sweep drivers can report throughput).
    events_processed: int = 0
    # ---- observability layer (repro.obs): per-layer fabric counters ----
    #: Messages per ledger category (``update`` / ``light``), as counted
    #: on the wire; reconciles 1:1 with traced ``msg_send`` events.
    message_counts: Dict[str, int] = field(default_factory=dict)
    #: Messages dropped because the sender or receiver was down.
    dropped_messages: int = 0
    #: Traffic that crossed an ISP boundary (Section 3.4.3).
    isp_crossing_messages: int = 0
    isp_crossing_kb: float = 0.0
    #: Summed one-way delay components over all propagated messages.
    isp_penalty_s: float = 0.0
    propagation_s: float = 0.0
    #: Summed sender-side time (port queueing + overhead + transmission).
    queueing_s: float = 0.0
    #: KB per directed link, keyed ``"src->dst"``.
    link_bytes_kb: Dict[str, float] = field(default_factory=dict)
    #: Summed downtime over every node (failure injection), seconds.
    node_downtime_s: float = 0.0
    #: Up -> down transitions across all nodes.
    down_transitions: int = 0
    #: Per-server staleness histogram (see
    #: :func:`repro.obs.counters.staleness_histogram`).
    staleness_hist_edges: List[float] = field(default_factory=list)
    staleness_hist_counts: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """A JSON-safe dict (used by the run registry); exact inverse of
        :meth:`from_dict` -- floats round-trip bit-identically."""
        return {
            "name": self.name,
            "server_lags": dict(self.server_lags),
            "user_lags": dict(self.user_lags),
            "user_stale_fractions": dict(self.user_stale_fractions),
            "cost_km_kb": self.cost_km_kb,
            "update_messages": self.update_messages,
            "light_messages": self.light_messages,
            "response_messages": self.response_messages,
            "provider_response_messages": self.provider_response_messages,
            "update_load_km": self.update_load_km,
            "light_load_km": self.light_load_km,
            "response_load_km": self.response_load_km,
            "request_load_km": self.request_load_km,
            "provider_update_messages": self.provider_update_messages,
            "provider_messages": self.provider_messages,
            "events_processed": self.events_processed,
            "message_counts": dict(self.message_counts),
            "dropped_messages": self.dropped_messages,
            "isp_crossing_messages": self.isp_crossing_messages,
            "isp_crossing_kb": self.isp_crossing_kb,
            "isp_penalty_s": self.isp_penalty_s,
            "propagation_s": self.propagation_s,
            "queueing_s": self.queueing_s,
            "link_bytes_kb": dict(self.link_bytes_kb),
            "node_downtime_s": self.node_downtime_s,
            "down_transitions": self.down_transitions,
            "staleness_hist_edges": list(self.staleness_hist_edges),
            "staleness_hist_counts": list(self.staleness_hist_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeploymentMetrics":
        return cls(**data)

    @property
    def mean_server_lag(self) -> float:
        return float(np.mean(list(self.server_lags.values())))

    @property
    def mean_user_lag(self) -> float:
        return float(np.mean(list(self.user_lags.values())))

    @property
    def mean_stale_fraction(self) -> float:
        return float(np.mean(list(self.user_stale_fractions.values())))

    def server_lag_percentiles(self, qs=(5.0, 50.0, 95.0)) -> List[float]:
        values = np.asarray(list(self.server_lags.values()))
        return [float(np.percentile(values, q)) for q in qs]


class Deployment:
    """A wired, startable simulation instance."""

    def __init__(
        self,
        name: str,
        config: TestbedConfig,
        env: Environment,
        streams: StreamRegistry,
        fabric: NetworkFabric,
        content: LiveContent,
        provider: ProviderActor,
        servers: List[ServerActor],
        users: Sequence[EndUserActor],
        cohort: Optional[UserCohort] = None,
    ) -> None:
        self.name = name
        self.config = config
        self.env = env
        self.streams = streams
        self.fabric = fabric
        self.content = content
        self.provider = provider
        self.servers = servers
        #: The vectorized user plane, or ``None`` when per-user actors
        #: carry the population (legacy kernel / REPRO_LEGACY_USERS).
        self.cohort = cohort
        self._users: Optional[Sequence] = list(users) if cohort is None else None
        self._ran = False
        #: Memoized staleness-series derivations (keyed by replica and
        #: apply-log length, so entries self-invalidate on new applies).
        self.series_cache = StalenessSeriesCache(content)
        #: Incremental metric state (fast kernel): running lag sums
        #: updated at version-change / visit events, so the collection
        #: pass is a cheap read instead of a full log re-scan.
        self._server_trackers: Dict[str, ServerLagTracker] = {}
        self._user_trackers: Dict[str, UserObservationTracker] = {}
        #: Aggregate user metrics on the *actor* plane (a cohort owns
        #: its own accumulators instead).
        self._user_aggregate: Optional[AggregateUserMetrics] = None
        if not env.legacy_kernel:
            for server in servers:
                tracker = ServerLagTracker(content)
                self._server_trackers[server.node.node_id] = tracker
                server.on_apply_hooks.append(self._apply_hook(tracker))
            if cohort is not None:
                pass  # the cohort maintains its own trackers/aggregates
            elif config.user_metrics == "aggregate":
                aggregate = AggregateUserMetrics(content, len(users))
                self._user_aggregate = aggregate
                for slot, user in enumerate(users):
                    user.on_observation = aggregate.observer(slot)
            else:
                for user in users:
                    user_tracker = UserObservationTracker(content)
                    self._user_trackers[user.node.node_id] = user_tracker
                    user.on_observation = user_tracker.observe

    @property
    def users(self) -> Sequence:
        """The user plane: actors, or actor-shaped cohort views (built
        lazily -- planet-scale collection never materialises them)."""
        users = self._users
        if users is None:
            assert self.cohort is not None
            users = self._users = self.cohort.users
        return users

    def _apply_hook(self, tracker: ServerLagTracker):
        env = self.env

        def hook(version: int) -> None:
            tracker.on_apply(env.now, version)

        return hook

    def run(self, horizon_s: Optional[float] = None) -> DeploymentMetrics:
        """Start all actors, run to the horizon, and summarise."""
        if self._ran:
            raise RuntimeError("deployment %r already ran" % self.name)
        self._ran = True
        horizon = horizon_s if horizon_s is not None else self.config.run_horizon_s
        for server in self.servers:
            server.start()
        if self.cohort is not None:
            self.cohort.start()
        else:
            for user in self.users:
                user.start()
        self.env.run(until=horizon)
        with span("deployment.collect"):
            return self._collect(horizon)

    def _all_nodes(self):
        yield self.provider.node
        for server in self.servers:
            yield server.node
        if self.cohort is not None:
            yield from self.cohort.nodes
        else:
            for user in self.users:
                yield user.node

    # ------------------------------------------------------------------
    # cached staleness series (see repro.metrics.timeseries)
    # ------------------------------------------------------------------
    def staleness_series_of(
        self,
        server_id: str,
        horizon_s: Optional[float] = None,
        step_s: float = 10.0,
    ) -> StalenessSeries:
        """One server's staleness-over-time series, memoized per
        ``(server, log length, horizon, step)``."""
        horizon = horizon_s if horizon_s is not None else self.config.run_horizon_s
        for server in self.servers:
            if server.node.node_id == server_id:
                return self.series_cache.series(
                    server_id, server.apply_log(), horizon, step_s
                )
        raise KeyError("unknown server %r" % server_id)

    def fleet_staleness_series(
        self, horizon_s: Optional[float] = None, step_s: float = 10.0
    ) -> StalenessSeries:
        """Mean staleness across all servers over time (memoized)."""
        horizon = horizon_s if horizon_s is not None else self.config.run_horizon_s
        return self.series_cache.fleet(
            [(server.node.node_id, server.apply_log()) for server in self.servers],
            horizon,
            step_s,
        )

    def _collect(self, horizon: float) -> DeploymentMetrics:
        ledger = self.fabric.ledger
        counters = self.fabric.counters
        # Bridge the always-on fabric counters into harness telemetry as
        # per-run totals (never per message: the hot path stays clean).
        TELEMETRY.count("fabric.messages_sent", counters.messages_sent)
        TELEMETRY.count("fabric.messages_delivered", counters.messages_delivered)
        TELEMETRY.count("fabric.dropped_messages", counters.dropped_messages)
        TELEMETRY.count("fabric.bytes_kb", counters.bytes_kb)
        TELEMETRY.count(
            "fabric.isp_crossing_messages", counters.isp_crossing_messages
        )
        user_lags: Dict[str, float] = {}
        stale: Dict[str, float] = {}
        cohort = self.cohort
        if not self.env.legacy_kernel:
            # Fast kernel: read the incrementally-maintained state.
            server_lags = {
                server_id: tracker.mean_lag(horizon)
                for server_id, tracker in self._server_trackers.items()
            }
            if cohort is not None:
                if cohort.aggregate is not None:
                    user_lags, stale = aggregate_user_rollup(
                        cohort.aggregate,
                        [node.node_id for node in cohort.nodes],
                        horizon,
                    )
                else:
                    for slot, node in enumerate(cohort.nodes):
                        user_tracker = cohort.trackers[slot]
                        user_lags[node.node_id] = user_tracker.mean_lag(horizon)
                        stale[node.node_id] = user_tracker.stale_fraction()
            elif self._user_aggregate is not None:
                user_lags, stale = aggregate_user_rollup(
                    self._user_aggregate,
                    [user.node.node_id for user in self.users],
                    horizon,
                )
            else:
                for user_id, user_tracker in self._user_trackers.items():
                    user_lags[user_id] = user_tracker.mean_lag(horizon)
                    stale[user_id] = user_tracker.stale_fraction()
        else:
            # Legacy kernel: re-derive everything from the full logs.
            server_lags = {
                server.node.node_id: mean_update_lag(
                    self.content, server.apply_log(), censor_at=horizon
                )
                for server in self.servers
            }
            if self.config.user_metrics == "aggregate":
                # Replay the observation logs through the same aggregate
                # accumulators the fast planes feed online, so all three
                # arms produce one metrics layout.
                users = list(self.users)
                aggregate = AggregateUserMetrics(self.content, len(users))
                for slot, user in enumerate(users):
                    for obs in user.observations:
                        aggregate.on_observe(slot, obs.time, obs.version)
                user_lags, stale = aggregate_user_rollup(
                    aggregate,
                    [user.node.node_id for user in users],
                    horizon,
                )
            else:
                for user in self.users:
                    log = [(obs.time, obs.version) for obs in user.observations]
                    user_lags[user.node.node_id] = mean_update_lag(
                        self.content, log, censor_at=horizon
                    )
                    stale[user.node.node_id] = stale_observation_fraction(
                        user.observations
                    )
        hist_edges, hist_counts = staleness_histogram(list(server_lags.values()))
        return DeploymentMetrics(
            name=self.name,
            server_lags=server_lags,
            user_lags=user_lags,
            user_stale_fractions=stale,
            cost_km_kb=ledger.consistency_cost_km_kb(),
            update_messages=ledger.update_message_count(),
            light_messages=ledger.light_message_count(),
            response_messages=ledger.response_message_count(),
            provider_response_messages=ledger.responses_sent_by("provider"),
            update_load_km=ledger.update_load_km(),
            light_load_km=ledger.light_load_km(),
            response_load_km=ledger.response_load_km(),
            request_load_km=ledger.request_load_km(),
            provider_update_messages=ledger.updates_sent_by("provider"),
            provider_messages=ledger.messages_sent_by("provider"),
            events_processed=self.env.events_processed,
            message_counts={
                "update": ledger.update_message_count(),
                "light": ledger.light_message_count(),
            },
            dropped_messages=counters.dropped_messages,
            isp_crossing_messages=counters.isp_crossing_messages,
            isp_crossing_kb=counters.isp_crossing_kb,
            isp_penalty_s=counters.isp_penalty_s,
            propagation_s=counters.propagation_s,
            queueing_s=counters.queueing_s,
            link_bytes_kb=dict(counters.link_bytes_kb),
            node_downtime_s=sum(
                node.downtime_s(horizon) for node in self._all_nodes()
            ),
            down_transitions=sum(
                node.down_transitions for node in self._all_nodes()
            ),
            staleness_hist_edges=hist_edges,
            staleness_hist_counts=hist_counts,
        )


# ----------------------------------------------------------------------
# shared construction pieces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _NodeSpec:
    """Environment-free snapshot of one placed node."""

    node_id: str
    point: object
    isp: object
    uplink_kbps: float
    city_name: Optional[str]


@dataclass
class _Placement:
    """A memoized topology placement plus its shared path geometry.

    Placement draws come exclusively from the dedicated
    ``topology.place`` / ``topology.isp`` streams, so sweep points that
    share ``(seed, n_servers, users_per_server, provider_city)`` place
    identical nodes; rebuilding nodes from the snapshot (instead of
    re-drawing) is bit-identical and skips the catalog sampling, ISP
    assignment, and -- via the shared ``path_cache`` -- the per-pair
    great-circle trigonometry of every later run.
    """

    provider: _NodeSpec
    servers: tuple
    users: tuple
    path_cache: Dict


#: Memoized placements, LRU-ordered (most recently used last).  The
#: capacity is env-tunable: sweeps cycling through more shapes than the
#: default (e.g. a wide Fig. 20x size axis crossed with many population
#: shards) would otherwise thrash; ``REPRO_PLACEMENT_CACHE=0`` disables
#: caching entirely.  Read at each insertion, so tests can retune it.
_PLACEMENT_CACHE: "OrderedDict[tuple, _Placement]" = OrderedDict()
_PLACEMENT_CACHE_MAX = 32
PLACEMENT_CACHE_ENV = "REPRO_PLACEMENT_CACHE"


def _placement_cache_max() -> int:
    raw = os.environ.get(PLACEMENT_CACHE_ENV, "")
    if not raw:
        return _PLACEMENT_CACHE_MAX
    try:
        return int(raw)
    except ValueError:
        return _PLACEMENT_CACHE_MAX


def _snapshot_node(node: NetworkNode) -> _NodeSpec:
    return _NodeSpec(
        node_id=node.node_id,
        point=node.point,
        isp=node.isp,
        uplink_kbps=node.uplink_kbps,
        city_name=node.city_name,
    )


def _spawn_node(env: Environment, spec: _NodeSpec) -> NetworkNode:
    return NetworkNode(
        env,
        node_id=spec.node_id,
        point=spec.point,  # type: ignore[arg-type]
        isp=spec.isp,  # type: ignore[arg-type]
        uplink_kbps=spec.uplink_kbps,
        city_name=spec.city_name,
    )


def _placed_topology(env: Environment, streams: StreamRegistry, config: TestbedConfig):
    """Build (or rebuild from cache) the topology for *config*.

    Returns ``(topology, path_cache)``.  The legacy kernel always builds
    fresh (and shares nothing), keeping the switchable slow path
    pristine for differential tests.
    """
    if env.legacy_kernel:
        builder = TopologyBuilder(env, streams)
        topology = builder.build(
            n_servers=config.n_servers,
            users_per_server=config.users_per_server,
            provider_city=config.provider_city,
            user_shards=config.user_shards,
            user_shard=config.user_shard,
        )
        return topology, None
    # Population shards are part of the key: shards share (seed, shape)
    # but place different user subsets, so a shard-blind key would both
    # return the wrong users and make a round-robin over shards evict
    # pathologically.
    key = (
        config.seed,
        config.n_servers,
        config.users_per_server,
        config.provider_city,
        config.user_shards,
        config.user_shard,
    )
    placement = _PLACEMENT_CACHE.get(key)
    if placement is None:
        builder = TopologyBuilder(env, streams)
        topology = builder.build(
            n_servers=config.n_servers,
            users_per_server=config.users_per_server,
            provider_city=config.provider_city,
            user_shards=config.user_shards,
            user_shard=config.user_shard,
        )
        placement = _Placement(
            provider=_snapshot_node(topology.provider),
            servers=tuple(_snapshot_node(node) for node in topology.servers),
            users=tuple(
                tuple(_snapshot_node(node) for node in group)
                for group in topology.users
            ),
            path_cache={},
        )
        max_entries = _placement_cache_max()
        if max_entries <= 0:
            return topology, placement.path_cache
        # Value-pure memoization: the placement is a pure function of the
        # full config key, so cache state can never change what a shard
        # computes -- only how fast (see RNG-stream note below).
        while len(_PLACEMENT_CACHE) >= max_entries:
            _PLACEMENT_CACHE.popitem(last=False)  # repro: noqa REP010 -- value-pure memoization keyed by full config
        _PLACEMENT_CACHE[key] = placement  # repro: noqa REP010 -- value-pure memoization keyed by full config
        return topology, placement.path_cache
    # Cache hit: rebuild nodes without touching the placement streams.
    # Nothing else ever draws from topology.place / topology.isp, so
    # later stream consumers see identical RNG state either way.
    _PLACEMENT_CACHE.move_to_end(key)
    topology = Topology(
        provider=_spawn_node(env, placement.provider),
        servers=[_spawn_node(env, spec) for spec in placement.servers],
        users=[
            [_spawn_node(env, spec) for spec in group] for group in placement.users
        ],
    )
    return topology, placement.path_cache


def _resolve_scenario_cell(config: TestbedConfig, scenario, scenario_cell: int):
    """Resolve a scenario name (or instance) to its requested cell.

    ``scenario=None`` keeps the legacy hard-wired path (bit-identical to
    the ``paper-baseline`` scenario; the differential tests pin both).
    The scenarios package is imported lazily: it imports the runner,
    which imports this module.
    """
    if scenario is None:
        if scenario_cell != 0:
            raise ValueError(
                "scenario_cell=%d requires an explicit scenario" % scenario_cell
            )
        return None, None
    from ..scenarios.registry import resolve_scenario

    resolved = resolve_scenario(scenario)
    return resolved, resolved.cell(config, scenario_cell)


def _base(config: TestbedConfig, tracer: Optional[Tracer] = None, cell=None):
    """Build env/streams/topology/fabric/content, honouring the cell's
    config overrides (applied *before* the topology is sized) and its
    content factory.  Returns the effective config last."""
    if cell is not None and cell.config_overrides:
        config = config.with_overrides(**dict(cell.config_overrides))
    env = Environment(tracer=tracer)
    streams = StreamRegistry(config.seed)
    topology, path_cache = _placed_topology(env, streams, config)
    fabric = NetworkFabric(
        env, ledger=TrafficLedger(), streams=streams, path_cache=path_cache
    )
    if cell is not None:
        content = cell.content_factory(config, streams)
    else:
        content = _make_content(config, streams)
    return env, streams, topology, fabric, content, config


def _make_content(config: TestbedConfig, streams: StreamRegistry) -> LiveContent:
    """The legacy hard-wired content: the ``paper-baseline`` scenario's
    ``content_from_workload`` replicates this recipe exactly (same
    stream name, same parameters) -- change them together."""
    workload = LiveGameWorkload(
        n_updates=config.n_updates, duration_s=config.game_duration_s
    )
    times = workload.generate(streams.stream("testbed.updates"))
    return LiveContent(
        "live-game",
        update_times=[config.update_start_s + t for t in times],
        update_size_kb=config.update_size_kb,
        light_size_kb=config.light_size_kb,
    )


def _scenario_name_suffix(resolved, config: TestbedConfig, cell) -> str:
    """Deployment-name suffix for non-default scenarios (the baseline
    keeps its legacy name so memoized metrics stay comparable)."""
    if resolved is None:
        return ""
    from ..scenarios.registry import DEFAULT_SCENARIO

    if resolved.name == DEFAULT_SCENARIO:
        return ""
    suffix = "@%s" % resolved.name
    if resolved.n_cells(config) > 1:
        suffix += "/%s" % cell.label
    return suffix


def _install_perturbations(deployment: "Deployment", cell) -> None:
    """Install the cell's perturbations on the wired deployment.

    The perturbation stream is only requested when there is something to
    install, so perturbation-free scenarios consume exactly the streams
    the legacy path did.
    """
    if cell is None or not cell.perturbations:
        return
    from ..scenarios.base import PERTURBATION_STREAM

    stream = deployment.streams.stream(PERTURBATION_STREAM)
    for perturbation in cell.perturbations:
        perturbation.install(deployment, stream)


def _make_policy(method: str, config: TestbedConfig, streams: StreamRegistry):
    phase = streams.stream("testbed.poll.phase")
    return resolve_method(method).factory(config.server_ttl_s, phase)


def _wire_provider(provider: ProviderActor, method: str) -> None:
    hook = resolve_method(method).provider_hook
    if hook is not None:
        getattr(provider, hook)()
    # pull-only methods (ttl / adaptive-ttl): the provider just answers polls.


def _make_infrastructure(name: str, config: TestbedConfig, fabric: NetworkFabric):
    return resolve_infrastructure(name).factory(fabric, config.tree_arity)


def _make_users(
    config: TestbedConfig,
    env: Environment,
    streams: StreamRegistry,
    fabric: NetworkFabric,
    content: LiveContent,
    topology: Topology,
    server_of_node: Dict[str, ServerActor],
) -> Tuple[Sequence[EndUserActor], Optional[UserCohort]]:
    """Build the user plane: a :class:`UserCohort` on the fast kernel,
    or per-user actors under the legacy kernel / ``REPRO_LEGACY_USERS``.

    Both planes draw the start offsets (and, lazily, the switch-selector
    targets) from the same streams in the same server-major order, so
    the arms are RNG-identical.  Returns ``(users, cohort)``; ``users``
    is empty when a cohort carries the population (read
    ``Deployment.users`` for actor-shaped views instead).
    """
    start_stream = streams.stream("testbed.user.start")
    switch_stream = streams.stream("testbed.user.switch")
    all_server_nodes = [server.node for server in server_of_node.values()]
    if not env.legacy_kernel and not legacy_users_enabled():
        nodes: List[NetworkNode] = []
        targets: List[NetworkNode] = []
        offsets: List[float] = []
        for index, server_node in enumerate(topology.servers):
            for user_node in topology.users[index]:
                nodes.append(user_node)
                targets.append(server_node)
                offsets.append(
                    start_stream.uniform(0.0, config.user_start_window_s)
                )
        if config.user_selector == "switch":
            cohort = UserCohort(
                env, fabric, content, nodes,
                user_ttl_s=config.user_ttl_s,
                start_offsets=offsets,
                switch_servers=all_server_nodes,
                switch_stream=switch_stream,
                user_metrics=config.user_metrics,
            )
        else:
            cohort = UserCohort(
                env, fabric, content, nodes,
                user_ttl_s=config.user_ttl_s,
                start_offsets=offsets,
                targets=targets,
                user_metrics=config.user_metrics,
            )
        return (), cohort
    users: List[EndUserActor] = []
    for index, server_node in enumerate(topology.servers):
        for user_node in topology.users[index]:
            if config.user_selector == "switch":
                selector = SwitchEveryVisitSelector(all_server_nodes, switch_stream)
            else:
                selector = FixedSelector(server_node)
            users.append(
                EndUserActor(
                    env,
                    user_node,
                    fabric,
                    content,
                    selector,
                    user_ttl_s=config.user_ttl_s,
                    start_offset_s=start_stream.uniform(0.0, config.user_start_window_s),
                )
            )
    return users, None


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def build_deployment(
    config: TestbedConfig,
    method: str,
    infrastructure: str = "unicast",
    tracer: Optional[Tracer] = None,
    scenario=None,
    scenario_cell: int = 0,
) -> Deployment:
    """One Section 4 cell: *method* running on *infrastructure*.

    Names resolve through :mod:`repro.consistency.registry`, so aliases
    ("self", "inval", "tree", ...) are accepted anywhere a canonical
    name is.  Pass a :class:`~repro.obs.tracer.RecordingTracer` as
    *tracer* to capture structured events (outcomes are unaffected).

    *scenario* (a :mod:`repro.scenarios` name, alias or instance)
    selects the workload/catalog/perturbation bundle; *scenario_cell*
    picks the catalog cell for multi-object scenarios.  ``None`` is the
    legacy hard-wired path, bit-identical to ``"paper-baseline"``.
    """
    with span("testbed.build"):
        return _build_deployment(
            config, method, infrastructure, tracer, scenario, scenario_cell
        )


def _build_deployment(
    config: TestbedConfig,
    method: str,
    infrastructure: str,
    tracer: Optional[Tracer],
    scenario=None,
    scenario_cell: int = 0,
) -> Deployment:
    method = resolve_method(method).name
    infrastructure = resolve_infrastructure(infrastructure).name
    # Rebase the process-wide message counter so trace seq fields are a
    # function of this run alone (see repro.network.message.reset_seq).
    reset_seq()
    resolved, cell = _resolve_scenario_cell(config, scenario, scenario_cell)
    env, streams, topology, fabric, content, config = _base(
        config, tracer=tracer, cell=cell
    )
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(
            env, node, fabric, content, policy=_make_policy(method, config, streams)
        )
        for node in topology.servers
    ]
    infra = _make_infrastructure(infrastructure, config, fabric)
    infra.wire(provider, servers)
    _wire_provider(provider, method)
    server_of_node = {server.node.node_id: server for server in servers}
    users, cohort = _make_users(
        config, env, streams, fabric, content, topology, server_of_node
    )
    deployment = Deployment(
        name="%s/%s%s"
        % (method, infrastructure, _scenario_name_suffix(resolved, config, cell)),
        config=config,
        env=env,
        streams=streams,
        fabric=fabric,
        content=content,
        provider=provider,
        servers=servers,
        users=users,
        cohort=cohort,
    )
    _install_perturbations(deployment, cell)
    return deployment


def build_system(
    config: TestbedConfig,
    system: str,
    tracer: Optional[Tracer] = None,
    scenario=None,
    scenario_cell: int = 0,
) -> Deployment:
    """One Section 5 system (Figs. 22-24); *scenario* as in
    :func:`build_deployment`."""
    if system in ("push", "invalidation", "ttl"):
        return build_deployment(
            config,
            system,
            "unicast",
            tracer=tracer,
            scenario=scenario,
            scenario_cell=scenario_cell,
        )
    if system == "self":
        deployment = build_deployment(
            config,
            "self-adaptive",
            "unicast",
            tracer=tracer,
            scenario=scenario,
            scenario_cell=scenario_cell,
        )
        # Rename but keep any scenario suffix ("@name" / "@name/cell").
        _, sep, suffix = deployment.name.partition("@")
        deployment.name = "self" + sep + suffix
        return deployment
    if system in ("hybrid", "hat"):
        with span("testbed.build"):
            return _build_hat_system(config, system, tracer, scenario, scenario_cell)
    raise ValueError("unknown system %r (expected one of %s)" % (system, SYSTEMS))


def _build_hat_system(
    config: TestbedConfig,
    system: str,
    tracer: Optional[Tracer],
    scenario=None,
    scenario_cell: int = 0,
) -> Deployment:
    resolved, cell = _resolve_scenario_cell(config, scenario, scenario_cell)
    env, streams, topology, fabric, content, config = _base(
        config, tracer=tracer, cell=cell
    )
    hat = HatSystem(
        env,
        fabric,
        streams,
        content,
        provider_node=topology.provider,
        server_nodes=list(topology.servers),
        config=HatConfig(
            n_clusters=config.hat_clusters,
            tree_arity=config.hat_arity,
            server_ttl_s=config.server_ttl_s,
            member_method="ttl" if system == "hybrid" else "self-adaptive",
        ),
    )
    server_of_node = dict(hat.server_by_node_id)
    users, cohort = _make_users(
        config, env, streams, fabric, content, topology, server_of_node
    )
    deployment = Deployment(
        name=system + _scenario_name_suffix(resolved, config, cell),
        config=config,
        env=env,
        streams=streams,
        fabric=fabric,
        content=content,
        provider=hat.provider,
        servers=hat.servers,
        users=users,
        cohort=cohort,
    )
    _install_perturbations(deployment, cell)
    return deployment
