"""Build and run one simulated-CDN deployment (the Section 4/5 testbed).

A *deployment* is a fully wired simulation: topology + fabric + content +
provider + servers (with an update-method policy) + end users, run to a
horizon and summarised into :class:`DeploymentMetrics`.

Two entry points:

- :func:`build_deployment` -- one update method on one infrastructure
  (the Section 4 grid: {push, invalidation, ttl, self-adaptive,
  adaptive-ttl} x {unicast, multicast, broadcast});
- :func:`build_system` -- the Section 5 named systems, adding ``self``
  (self-adaptive on unicast), ``hybrid`` (HAT infrastructure with plain
  TTL members) and ``hat`` (the full proposal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..cdn.client import EndUserActor, FixedSelector, SwitchEveryVisitSelector
from ..cdn.content import LiveContent
from ..cdn.provider import ProviderActor
from ..cdn.server import ServerActor
from ..consistency.adaptive import AdaptiveTTLPolicy, SelfAdaptivePolicy
from ..consistency.broadcast import BroadcastInfrastructure
from ..consistency.invalidation import InvalidationPolicy
from ..consistency.multicast import MulticastTreeInfrastructure
from ..consistency.push import PushPolicy
from ..consistency.ttl import TTLPolicy
from ..consistency.unicast import UnicastInfrastructure
from ..core.hat import HatConfig, HatSystem
from ..metrics.consistency import (
    mean_update_lag,
    stale_observation_fraction,
)
from ..metrics.traffic import TrafficLedger
from ..network.link import NetworkFabric
from ..network.topology import Topology, TopologyBuilder
from ..sim.engine import Environment
from ..sim.rng import StreamRegistry
from ..trace.workload import LiveGameWorkload
from .config import TestbedConfig

__all__ = [
    "METHODS",
    "INFRASTRUCTURES",
    "SYSTEMS",
    "Deployment",
    "DeploymentMetrics",
    "build_deployment",
    "build_system",
]

METHODS = ("push", "invalidation", "ttl", "self-adaptive", "adaptive-ttl", "dynamic")
INFRASTRUCTURES = ("unicast", "multicast", "broadcast")
#: Section 5 systems (Figs. 22-24).
SYSTEMS = ("push", "invalidation", "ttl", "self", "hybrid", "hat")


@dataclass
class DeploymentMetrics:
    """Everything the figure drivers read off one finished run."""

    name: str
    server_lags: Dict[str, float]
    user_lags: Dict[str, float]
    user_stale_fractions: Dict[str, float]
    cost_km_kb: float
    update_messages: int
    light_messages: int
    #: Fig. 22 metric: bodies + poll responses ("update messages" in the
    #: paper's Section 5 accounting).
    response_messages: int
    provider_response_messages: int
    update_load_km: float
    light_load_km: float
    #: Fig. 23 loads under the response-inclusive split.
    response_load_km: float
    request_load_km: float
    provider_update_messages: int
    provider_messages: int

    @property
    def mean_server_lag(self) -> float:
        return float(np.mean(list(self.server_lags.values())))

    @property
    def mean_user_lag(self) -> float:
        return float(np.mean(list(self.user_lags.values())))

    @property
    def mean_stale_fraction(self) -> float:
        return float(np.mean(list(self.user_stale_fractions.values())))

    def server_lag_percentiles(self, qs=(5.0, 50.0, 95.0)) -> List[float]:
        values = np.asarray(list(self.server_lags.values()))
        return [float(np.percentile(values, q)) for q in qs]


class Deployment:
    """A wired, startable simulation instance."""

    def __init__(
        self,
        name: str,
        config: TestbedConfig,
        env: Environment,
        streams: StreamRegistry,
        fabric: NetworkFabric,
        content: LiveContent,
        provider: ProviderActor,
        servers: List[ServerActor],
        users: List[EndUserActor],
    ) -> None:
        self.name = name
        self.config = config
        self.env = env
        self.streams = streams
        self.fabric = fabric
        self.content = content
        self.provider = provider
        self.servers = servers
        self.users = users
        self._ran = False

    def run(self, horizon_s: Optional[float] = None) -> DeploymentMetrics:
        """Start all actors, run to the horizon, and summarise."""
        if self._ran:
            raise RuntimeError("deployment %r already ran" % self.name)
        self._ran = True
        horizon = horizon_s if horizon_s is not None else self.config.run_horizon_s
        for server in self.servers:
            server.start()
        for user in self.users:
            user.start()
        self.env.run(until=horizon)
        return self._collect(horizon)

    def _collect(self, horizon: float) -> DeploymentMetrics:
        ledger = self.fabric.ledger
        server_lags = {
            server.node.node_id: mean_update_lag(
                self.content, server.apply_log(), censor_at=horizon
            )
            for server in self.servers
        }
        user_lags = {}
        stale = {}
        for user in self.users:
            log = [(obs.time, obs.version) for obs in user.observations]
            user_lags[user.node.node_id] = mean_update_lag(
                self.content, log, censor_at=horizon
            )
            stale[user.node.node_id] = stale_observation_fraction(user.observations)
        return DeploymentMetrics(
            name=self.name,
            server_lags=server_lags,
            user_lags=user_lags,
            user_stale_fractions=stale,
            cost_km_kb=ledger.consistency_cost_km_kb(),
            update_messages=ledger.update_message_count(),
            light_messages=ledger.light_message_count(),
            response_messages=ledger.response_message_count(),
            provider_response_messages=ledger.responses_sent_by("provider"),
            update_load_km=ledger.update_load_km(),
            light_load_km=ledger.light_load_km(),
            response_load_km=ledger.response_load_km(),
            request_load_km=ledger.request_load_km(),
            provider_update_messages=ledger.updates_sent_by("provider"),
            provider_messages=ledger.messages_sent_by("provider"),
        )


# ----------------------------------------------------------------------
# shared construction pieces
# ----------------------------------------------------------------------
def _base(config: TestbedConfig):
    env = Environment()
    streams = StreamRegistry(config.seed)
    builder = TopologyBuilder(env, streams)
    topology = builder.build(
        n_servers=config.n_servers,
        users_per_server=config.users_per_server,
        provider_city=config.provider_city,
    )
    fabric = NetworkFabric(env, ledger=TrafficLedger(), streams=streams)
    content = _make_content(config, streams)
    return env, streams, topology, fabric, content


def _make_content(config: TestbedConfig, streams: StreamRegistry) -> LiveContent:
    workload = LiveGameWorkload(
        n_updates=config.n_updates, duration_s=config.game_duration_s
    )
    times = workload.generate(streams.stream("testbed.updates"))
    return LiveContent(
        "live-game",
        update_times=[config.update_start_s + t for t in times],
        update_size_kb=config.update_size_kb,
        light_size_kb=config.light_size_kb,
    )


def _make_policy(method: str, config: TestbedConfig, streams: StreamRegistry):
    phase = streams.stream("testbed.poll.phase")
    if method == "push":
        return PushPolicy(forward=True)
    if method == "invalidation":
        return InvalidationPolicy(forward=True)
    if method == "ttl":
        return TTLPolicy(config.server_ttl_s, stream=phase)
    if method == "self-adaptive":
        return SelfAdaptivePolicy(config.server_ttl_s, stream=phase)
    if method == "adaptive-ttl":
        return AdaptiveTTLPolicy(
            min_ttl_s=config.server_ttl_s,
            max_ttl_s=8.0 * config.server_ttl_s,
            stream=phase,
        )
    if method == "dynamic":
        from ..core.dynamic import DynamicPolicy

        return DynamicPolicy(
            config.server_ttl_s,
            staleness_tolerance_s=config.server_ttl_s / 2.0,
            stream=phase,
        )
    raise ValueError("unknown method %r (expected one of %s)" % (method, METHODS))


def _wire_provider(provider: ProviderActor, method: str) -> None:
    if method == "push":
        provider.use_push()
    elif method == "invalidation":
        provider.use_invalidation()
    elif method == "self-adaptive":
        provider.use_self_adaptive()
    elif method == "dynamic":
        provider.use_dynamic()
    # ttl / adaptive-ttl: pull-only, the provider just answers polls.


def _make_infrastructure(name: str, config: TestbedConfig, fabric: NetworkFabric):
    if name == "unicast":
        return UnicastInfrastructure()
    if name == "multicast":
        return MulticastTreeInfrastructure(fabric, arity=config.tree_arity)
    if name == "broadcast":
        return BroadcastInfrastructure(fabric)
    raise ValueError(
        "unknown infrastructure %r (expected one of %s)" % (name, INFRASTRUCTURES)
    )


def _make_users(
    config: TestbedConfig,
    env: Environment,
    streams: StreamRegistry,
    fabric: NetworkFabric,
    content: LiveContent,
    topology: Topology,
    server_of_node: Dict[str, ServerActor],
) -> List[EndUserActor]:
    start_stream = streams.stream("testbed.user.start")
    switch_stream = streams.stream("testbed.user.switch")
    all_server_nodes = [server.node for server in server_of_node.values()]
    users: List[EndUserActor] = []
    for index, server_node in enumerate(topology.servers):
        for user_node in topology.users[index]:
            if config.user_selector == "switch":
                selector = SwitchEveryVisitSelector(all_server_nodes, switch_stream)
            else:
                selector = FixedSelector(server_node)
            users.append(
                EndUserActor(
                    env,
                    user_node,
                    fabric,
                    content,
                    selector,
                    user_ttl_s=config.user_ttl_s,
                    start_offset_s=start_stream.uniform(0.0, config.user_start_window_s),
                )
            )
    return users


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def build_deployment(
    config: TestbedConfig, method: str, infrastructure: str = "unicast"
) -> Deployment:
    """One Section 4 cell: *method* running on *infrastructure*."""
    env, streams, topology, fabric, content = _base(config)
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(
            env, node, fabric, content, policy=_make_policy(method, config, streams)
        )
        for node in topology.servers
    ]
    infra = _make_infrastructure(infrastructure, config, fabric)
    infra.wire(provider, servers)
    _wire_provider(provider, method)
    server_of_node = {server.node.node_id: server for server in servers}
    users = _make_users(config, env, streams, fabric, content, topology, server_of_node)
    return Deployment(
        name="%s/%s" % (method, infrastructure),
        config=config,
        env=env,
        streams=streams,
        fabric=fabric,
        content=content,
        provider=provider,
        servers=servers,
        users=users,
    )


def build_system(config: TestbedConfig, system: str) -> Deployment:
    """One Section 5 system (Figs. 22-24)."""
    if system in ("push", "invalidation", "ttl"):
        return build_deployment(config, system, "unicast")
    if system == "self":
        deployment = build_deployment(config, "self-adaptive", "unicast")
        deployment.name = "self"
        return deployment
    if system in ("hybrid", "hat"):
        env, streams, topology, fabric, content = _base(config)
        hat = HatSystem(
            env,
            fabric,
            streams,
            content,
            provider_node=topology.provider,
            server_nodes=list(topology.servers),
            config=HatConfig(
                n_clusters=config.hat_clusters,
                tree_arity=config.hat_arity,
                server_ttl_s=config.server_ttl_s,
                member_method="ttl" if system == "hybrid" else "self-adaptive",
            ),
        )
        server_of_node = dict(hat.server_by_node_id)
        users = _make_users(
            config, env, streams, fabric, content, topology, server_of_node
        )
        return Deployment(
            name=system,
            config=config,
            env=env,
            streams=streams,
            fabric=fabric,
            content=content,
            provider=hat.provider,
            servers=hat.servers,
            users=users,
        )
    raise ValueError("unknown system %r (expected one of %s)" % (system, SYSTEMS))
