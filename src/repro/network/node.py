"""Network node: the attachment point of every simulated actor.

A node owns its geographic position, ISP membership, uplink bandwidth and
-- crucially for the paper's scalability results -- an *output port*
resource of capacity 1.  All transmissions leaving a node serialise on
this port, so a provider pushing a large update to 170 unicast children
queues 170 back-to-back transmissions (the Incast / fan-out bottleneck of
Figs. 19-20), while a binary-tree parent queues only 2.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from ..sim.resources import Resource, Store
from .geo import GeoPoint
from .isp import ISP

__all__ = ["NetworkNode", "DEFAULT_UPLINK_KBPS", "DEFAULT_PROVIDER_UPLINK_KBPS"]

#: Default edge-server uplink, KB/s (a modest 50 Mbit/s share -- the
#: paper's PlanetLab nodes are far from datacenter-grade).
DEFAULT_UPLINK_KBPS = 6_250.0

#: Default provider uplink, KB/s.  The paper's provider is itself a
#: PlanetLab node ("We chose one node in Atlanta as the provider"), so
#: it gets the same uplink as the servers -- which is exactly why the
#: unicast star congests at the provider (Figs. 19-20).
DEFAULT_PROVIDER_UPLINK_KBPS = 6_250.0


class NetworkNode:
    """A host in the simulated network."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        point: GeoPoint,
        isp: ISP,
        uplink_kbps: float = DEFAULT_UPLINK_KBPS,
        city_name: Optional[str] = None,
    ) -> None:
        if uplink_kbps <= 0:
            raise ValueError("uplink_kbps must be positive")
        self.env = env
        self.node_id = node_id
        self.point = point
        self.isp = isp
        self.uplink_kbps = uplink_kbps
        self.city_name = city_name
        #: Output port: transmissions leaving this node serialise here.
        self.output_port = Resource(env, capacity=1)
        #: Inbox: the fabric delivers received messages into this store.
        self.inbox: Store = Store(env)
        #: Set by failure injection; a down node neither sends nor receives.
        self.is_up = True

    def __repr__(self) -> str:
        return "NetworkNode(%s @ %s)" % (self.node_id, self.city_name or self.point)

    def distance_km(self, other: "NetworkNode") -> float:
        """Great-circle distance to another node."""
        return self.point.distance_km(other.point)

    def transmission_delay(self, size_kb: float) -> float:
        """Seconds this node's uplink needs to serialise *size_kb*."""
        if size_kb < 0:
            raise ValueError("size_kb must be >= 0")
        return size_kb / self.uplink_kbps
