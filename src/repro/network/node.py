"""Network node: the attachment point of every simulated actor.

A node owns its geographic position, ISP membership, uplink bandwidth and
-- crucially for the paper's scalability results -- an *output port*
resource of capacity 1.  All transmissions leaving a node serialise on
this port, so a provider pushing a large update to 170 unicast children
queues 170 back-to-back transmissions (the Incast / fan-out bottleneck of
Figs. 19-20), while a binary-tree parent queues only 2.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.engine import Environment
from ..sim.resources import Resource, Store
from .geo import GeoPoint
from .isp import ISP

__all__ = ["NetworkNode", "DEFAULT_UPLINK_KBPS", "DEFAULT_PROVIDER_UPLINK_KBPS"]

#: Default edge-server uplink, KB/s (a modest 50 Mbit/s share -- the
#: paper's PlanetLab nodes are far from datacenter-grade).
DEFAULT_UPLINK_KBPS = 6_250.0

#: Default provider uplink, KB/s.  The paper's provider is itself a
#: PlanetLab node ("We chose one node in Atlanta as the provider"), so
#: it gets the same uplink as the servers -- which is exactly why the
#: unicast star congests at the provider (Figs. 19-20).
DEFAULT_PROVIDER_UPLINK_KBPS = 6_250.0


class NetworkNode:
    """A host in the simulated network."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        point: GeoPoint,
        isp: ISP,
        uplink_kbps: float = DEFAULT_UPLINK_KBPS,
        city_name: Optional[str] = None,
    ) -> None:
        if uplink_kbps <= 0:
            raise ValueError("uplink_kbps must be positive")
        self.env = env
        self.node_id = node_id
        self.point = point
        self.isp = isp
        self.uplink_kbps = uplink_kbps
        self.city_name = city_name
        #: Output port: transmissions leaving this node serialise here.
        self.output_port = Resource(env, capacity=1)
        self._inbox: Optional[Store] = None
        #: Fast-kernel direct dispatch: when an actor registers a
        #: consumer, :meth:`deliver` calls it synchronously at delivery
        #: time instead of round-tripping through the inbox store (which
        #: costs a ``StorePut`` + ``StoreGet`` heap pop per message).
        self.consumer: Optional[Callable[[Any], None]] = None
        #: Number of currently active absences.  The node is up only
        #: while this is zero, so overlapping failure-injection windows
        #: nest instead of the first window's end reviving the node
        #: while the second is still active.
        self._down_count = 0
        self._down_since: Optional[float] = None
        self._downtime_s = 0.0
        #: Up->down transitions observed (counts merged windows once).
        self.down_transitions = 0

    def __repr__(self) -> str:
        return "NetworkNode(%s @ %s)" % (self.node_id, self.city_name or self.point)

    @property
    def inbox(self) -> Store:
        """Inbox: the fabric delivers received messages into this store.

        Built lazily -- fast-kernel nodes with a registered consumer
        never touch it, which matters when the cohort plane attaches a
        million user nodes (``Store`` construction has no side effects
        on the environment, so laziness is unobservable)."""
        store = self._inbox
        if store is None:
            store = self._inbox = Store(self.env)
        return store

    # ------------------------------------------------------------------
    # up/down state (failure injection, Section 3.4.5)
    # ------------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        """``True`` while no absence is active; a down node neither
        sends nor receives."""
        return self._down_count == 0

    @is_up.setter
    def is_up(self, value: bool) -> None:
        """Force the node's state (legacy direct flips, e.g. permanent
        HAT supernode failures).  Prefer :meth:`mark_down` /
        :meth:`mark_up` for nestable absence windows."""
        if value:
            if self._down_count:
                self._down_count = 0
                self._transition(up=True)
        else:
            if self._down_count == 0:
                self._down_count = 1
                self._transition(up=False)

    def mark_down(self) -> None:
        """Begin one absence window (nests with overlapping windows)."""
        self._down_count += 1
        if self._down_count == 1:
            self._transition(up=False)

    def mark_up(self) -> None:
        """End one absence window; the node revives only when every
        active window has ended (tolerates a forced ``is_up = True``
        having already cleared the count)."""
        if self._down_count == 0:
            return
        self._down_count -= 1
        if self._down_count == 0:
            self._transition(up=True)

    def _transition(self, up: bool) -> None:
        now = self.env.now
        if up:
            if self._down_since is not None:
                self._downtime_s += now - self._down_since
                self._down_since = None
        else:
            self.down_transitions += 1
            self._down_since = now
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(now, "node_up" if up else "node_down", self.node_id)

    def deliver(self, message: Any) -> None:
        """Hand a delivered *message* to the registered consumer, or the
        inbox store when no consumer is attached (legacy kernel, bare
        nodes in transport tests)."""
        consumer = self.consumer
        if consumer is not None:
            consumer(message)
        else:
            self.inbox.put(message)

    def downtime_s(self, now: Optional[float] = None) -> float:
        """Total seconds spent down, including any open absence."""
        total = self._downtime_s
        if self._down_since is not None:
            total += (now if now is not None else self.env.now) - self._down_since
        return total

    def distance_km(self, other: "NetworkNode") -> float:
        """Great-circle distance to another node."""
        return self.point.distance_km(other.point)

    def transmission_delay(self, size_kb: float) -> float:
        """Seconds this node's uplink needs to serialise *size_kb*."""
        if size_kb < 0:
            raise ValueError("size_kb must be >= 0")
        return size_kb / self.uplink_kbps
