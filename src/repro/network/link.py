"""The network fabric: message transport with realistic delays.

Every message experiences

1. *output-port queueing* at the sender (transmissions serialise on the
   sender's uplink -- the paper's provider-fan-out bottleneck),
2. *transmission delay* ``size / uplink bandwidth``,
3. *propagation delay* proportional to great-circle distance (light in
   fibre travels at roughly 2/3 c), plus a small per-path base latency,
4. an *inter-ISP penalty* when the message crosses ISP boundaries
   (Section 3.4.3 of the paper).

The fabric also feeds every delivered message into a
:class:`~repro.metrics.traffic.TrafficLedger` so experiments can report
traffic cost (km*KB), message counts, and network load (km).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..metrics.traffic import TrafficLedger
from ..obs.counters import FabricCounters
from ..sim.engine import Environment, Event
from ..sim.rng import RandomStream, StreamRegistry
from .isp import InterISPModel
from .message import Message
from .node import NetworkNode

__all__ = ["FabricParams", "NetworkFabric", "SPEED_OF_LIGHT_FIBRE_KM_S"]

#: Signal speed in optical fibre (~2/3 of c), km/s.
SPEED_OF_LIGHT_FIBRE_KM_S = 200_000.0


@dataclass
class FabricParams:
    """Tunable constants of the transport model."""

    #: Propagation speed along the (idealised great-circle) path.
    speed_km_per_s: float = SPEED_OF_LIGHT_FIBRE_KM_S
    #: Fixed per-path overhead (routing, last-mile), seconds.
    base_latency_s: float = 0.004
    #: Per-message service time at the sender's output port (syscalls,
    #: application processing) -- what makes a provider unicasting to N
    #: children serialise ~N of these and drives the Fig. 19/20 trends.
    per_message_overhead_s: float = 0.005
    #: Relative jitter applied to the propagation component.
    latency_jitter_frac: float = 0.10
    #: Path-stretch factor: real routes are longer than great circles.
    path_stretch: float = 1.3
    #: Inter-ISP handoff penalty model.
    inter_isp: InterISPModel = field(default_factory=InterISPModel)

    def __post_init__(self) -> None:
        if self.speed_km_per_s <= 0:
            raise ValueError("speed_km_per_s must be positive")
        if self.path_stretch < 1.0:
            raise ValueError("path_stretch must be >= 1")


class NetworkFabric:
    """Carries messages between :class:`NetworkNode` objects."""

    def __init__(
        self,
        env: Environment,
        ledger: Optional[TrafficLedger] = None,
        params: Optional[FabricParams] = None,
        streams: Optional[StreamRegistry] = None,
    ) -> None:
        self.env = env
        self.ledger = ledger if ledger is not None else TrafficLedger()
        self.params = params if params is not None else FabricParams()
        streams = streams if streams is not None else StreamRegistry(0)
        self._jitter_stream: RandomStream = streams.stream("fabric.jitter")
        self._isp_stream: RandomStream = streams.stream("fabric.isp")
        #: Messages dropped because the receiver was down.
        self.dropped = 0
        #: Always-on per-layer accounting (see :mod:`repro.obs.counters`).
        self.counters = FabricCounters()

    # ------------------------------------------------------------------
    # delay model
    # ------------------------------------------------------------------
    def min_latency_s(self, src: NetworkNode, dst: NetworkNode) -> float:
        """Deterministic one-way latency (no jitter, no queueing).

        Used by proximity-aware tree building as the "inter-ping latency"
        measure of Section 4.
        """
        distance = src.distance_km(dst) * self.params.path_stretch
        return self.params.base_latency_s + distance / self.params.speed_km_per_s

    def _delay_components(self, src: NetworkNode, dst: NetworkNode) -> "tuple[float, float]":
        """One-way delay split into (propagation incl. jitter, ISP penalty)."""
        base = self.min_latency_s(src, dst)
        jitter = self._jitter_stream.jitter(base, self.params.latency_jitter_frac) - base
        penalty = self.params.inter_isp.penalty(src.isp, dst.isp, self._isp_stream)
        return max(0.0, base + jitter), penalty

    def _one_way_delay(self, src: NetworkNode, dst: NetworkNode) -> float:
        propagation, penalty = self._delay_components(src, dst)
        return propagation + penalty

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, message: Message) -> Event:
        """Send *message*; the returned event fires at delivery time.

        The event's value is ``True`` if the message reached the
        receiver's inbox and ``False`` if it was dropped (receiver down).
        A down *sender* drops the message immediately.
        """
        message.created_at = self.env.now
        return self.env.process(self._transfer(message))

    def _transfer(self, message: Message):
        src: NetworkNode = message.src
        dst: NetworkNode = message.dst
        counters = self.counters
        tracer = self.env.tracer
        if not src.is_up:
            self.dropped += 1
            counters.dropped_sender_down += 1
            if tracer.enabled:
                tracer.emit(
                    self.env.now, "msg_drop", src.node_id,
                    reason="sender_down", **message.trace_detail()
                )
            return False

        # 1-2. Queue on, then occupy, the sender's output port.
        entered_port = self.env.now
        with src.output_port.request() as grant:
            yield grant
            yield self.env.timeout(
                self.params.per_message_overhead_s
                + src.transmission_delay(message.size_kb)
            )
        counters.queueing_s += self.env.now - entered_port

        # The bytes have left the sender: account for them.
        distance = src.distance_km(dst)
        self.ledger.record(message, distance)
        counters.record_sent(src.node_id, dst.node_id, message.size_kb)
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_send", src.node_id, **message.trace_detail()
            )

        # 3-4. Propagate (incl. possible inter-ISP penalty).
        propagation, penalty = self._delay_components(src, dst)
        counters.record_propagation(propagation, penalty, message.size_kb)
        yield self.env.timeout(propagation + penalty)

        if not dst.is_up:
            self.dropped += 1
            counters.dropped_receiver_down += 1
            if tracer.enabled:
                tracer.emit(
                    self.env.now, "msg_drop", dst.node_id,
                    reason="receiver_down", **message.trace_detail()
                )
            return False
        dst.inbox.put(message)
        counters.messages_delivered += 1
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_recv", dst.node_id, **message.trace_detail()
            )
        return True

    def rtt_s(self, a: NetworkNode, b: NetworkNode) -> float:
        """Deterministic round-trip latency estimate between two nodes."""
        return 2.0 * self.min_latency_s(a, b)
