"""The network fabric: message transport with realistic delays.

Every message experiences

1. *output-port queueing* at the sender (transmissions serialise on the
   sender's uplink -- the paper's provider-fan-out bottleneck),
2. *transmission delay* ``size / uplink bandwidth``,
3. *propagation delay* proportional to great-circle distance (light in
   fibre travels at roughly 2/3 c), plus a small per-path base latency,
4. an *inter-ISP penalty* when the message crosses ISP boundaries
   (Section 3.4.3 of the paper).

The fabric also feeds every delivered message into a
:class:`~repro.metrics.traffic.TrafficLedger` so experiments can report
traffic cost (km*KB), message counts, and network load (km).

Two transport implementations carry each message through those stages:

- the **fast path** (default): a slotted, callback-driven state machine
  (:class:`_FastTransfer`) that chains raw kernel events directly --
  queue -> transmit -> propagate -> deliver -- reusing one hop event per
  message and claiming an uncontended output port synchronously, with
  no generator frame, no ``Process``, and no ``Request``/``Release``
  round-trip;
- the **legacy path**: the original generator-backed process, kept
  behind the ``REPRO_LEGACY_TRANSPORT`` environment variable (or the
  ``legacy_transport`` constructor flag) for differential testing.

Both paths draw jitter/ISP randomness at the same simulated instants in
the same order and post identical ledger/counter/tracer records, so a
run's :class:`~repro.experiments.testbed.DeploymentMetrics` are
bit-identical whichever path carried the traffic (the kernel-event
*count* differs: the fast path processes fewer events per message).
See ``docs/performance.md`` and ``tests/test_transport_equivalence.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..metrics.traffic import TrafficLedger
from ..obs.counters import FabricCounters
from heapq import heappush as _heappush

from ..sim.engine import Environment, Event, NORMAL, URGENT
from ..sim.rng import RandomStream, StreamRegistry
from .isp import InterISPModel
from .message import Message
from .node import NetworkNode

__all__ = ["FabricParams", "NetworkFabric", "SPEED_OF_LIGHT_FIBRE_KM_S"]

#: Signal speed in optical fibre (~2/3 of c), km/s.
SPEED_OF_LIGHT_FIBRE_KM_S = 200_000.0

#: Environment variable selecting the legacy generator transport.
LEGACY_TRANSPORT_ENV = "REPRO_LEGACY_TRANSPORT"


@dataclass
class FabricParams:
    """Tunable constants of the transport model."""

    #: Propagation speed along the (idealised great-circle) path.
    speed_km_per_s: float = SPEED_OF_LIGHT_FIBRE_KM_S
    #: Fixed per-path overhead (routing, last-mile), seconds.
    base_latency_s: float = 0.004
    #: Per-message service time at the sender's output port (syscalls,
    #: application processing) -- what makes a provider unicasting to N
    #: children serialise ~N of these and drives the Fig. 19/20 trends.
    per_message_overhead_s: float = 0.005
    #: Relative jitter applied to the propagation component.
    latency_jitter_frac: float = 0.10
    #: Path-stretch factor: real routes are longer than great circles.
    path_stretch: float = 1.3
    #: Inter-ISP handoff penalty model.
    inter_isp: InterISPModel = field(default_factory=InterISPModel)

    def __post_init__(self) -> None:
        if self.speed_km_per_s <= 0:
            raise ValueError("speed_km_per_s must be positive")
        if self.path_stretch < 1.0:
            raise ValueError("path_stretch must be >= 1")
        if self.base_latency_s < 0:
            raise ValueError("base_latency_s must be >= 0")
        if self.per_message_overhead_s < 0:
            raise ValueError("per_message_overhead_s must be >= 0")
        if self.latency_jitter_frac < 0:
            raise ValueError("latency_jitter_frac must be >= 0")


class _FastTransfer:
    """Callback-driven transport of one message (the fast path).

    Replaces the legacy per-message generator process with a slotted
    state machine that walks the same stages at the same simulated
    instants.  One reusable ``hop`` event carries the transfer through
    start -> transmit-done -> deliver (reset and rescheduled between
    stages instead of allocating a new ``Timeout`` per stage); ``done``
    is the completion event handed back to the caller, firing with
    ``True``/``False`` exactly when the legacy process event would.
    """

    __slots__ = (
        "fabric",
        "env",
        "message",
        "done",
        "hop",
        "entered_port",
        "claim",
        "_cb_start",
        "_cb_granted",
        "_cb_transmit",
        "_cb_deliver",
        "_overhead_s",
        "_counters",
        "_record",
        "_path",
        "_jitter",
        "_isp_uniform",
        "_jitter_frac",
        "_inter",
    )

    def __init__(self, fabric: "NetworkFabric") -> None:
        env = fabric.env
        self.fabric = fabric
        self.env = env
        self.entered_port = 0.0
        self.claim: object = None
        # One reusable hop event; idle (processed) until a launch arms it.
        hop = Event(env)
        hop._ok = True
        hop._value = None
        hop.callbacks = None
        self.hop = hop
        # Prebuilt single-callback lists, one per stage: the engine only
        # ever *iterates* an event's callback list, so the same list
        # object can be re-attached to the hop for every message this
        # pooled transfer carries (one list allocation per transfer
        # instead of one per hop).
        self._cb_start: List[Callable[[Event], None]] = [self._start]
        self._cb_granted: List[Callable[[Event], None]] = [self._granted]
        self._cb_transmit: List[Callable[[Event], None]] = [self._transmit_done]
        self._cb_deliver: List[Callable[[Event], None]] = [self._deliver]
        # Fabric collaborators and parameters are fixed for the fabric's
        # lifetime; caching them (and the hot bound methods) on the
        # pooled transfer keeps stage 2 off the attribute-chain treadmill.
        params = fabric.params
        self._overhead_s = params.per_message_overhead_s
        self._jitter_frac = params.latency_jitter_frac
        self._inter = params.inter_isp
        self._counters = fabric.counters
        self._record = fabric.ledger.record
        self._path = fabric._path
        self._jitter = fabric._jitter_stream.jitter
        self._isp_uniform = fabric._isp_stream.uniform

    def _launch(self, message: Message) -> Event:
        """Arm this (new or recycled) transfer for *message*.

        Legacy kernel: schedule the start hop URGENT at the current
        instant -- exactly where the legacy path's ``_Initialize``
        resumes the generator, so the sender's up/down state is sampled
        at the same point in the event order.  Fast kernel: run the
        start stage synchronously inside ``send()`` -- the sender check
        and port claim read state that only the current callback cascade
        could change, so sampling it now instead of at an URGENT pop at
        the same instant is observably identical and saves one heap pop
        per message.
        """
        env = self.env
        self.message: Message = message
        done = Event(env)
        self.done: Event = done
        if env.legacy_kernel:
            hop = self.hop
            hop.callbacks = self._cb_start
            env.schedule(hop, priority=URGENT)
            return done
        src: NetworkNode = message.src
        if not src.is_up:
            # ``sync``: the caller has not seen ``done`` yet, so it can't
            # have registered interest -- completing through the heap
            # keeps post-send callback attachment working.
            self._drop(src.node_id, "sender_down", "dropped_sender_down", sync=True)
            return done
        self._claim_port(src, message)
        return done

    # ------------------------------------------------------------------
    def _next_hop(self, callbacks: List[Callable[[Event], None]], delay: float) -> None:
        """Re-arm the (already processed) hop event for the next stage.

        ``Environment.schedule`` inlined: two messages per request at CDN
        scale make the extra call measurable.  Sanitize runs take the
        un-inlined path so tie perturbation covers transport hops too.
        """
        hop = self.hop
        hop.callbacks = callbacks
        env = self.env
        if env.sanitizer is not None:
            env.schedule(hop, delay=delay)
            return
        env._eid += 1
        _heappush(env._queue, (env._now + delay, NORMAL, env._eid, hop))

    def _finish(self, delivered: bool, sync: bool = False) -> None:
        """Trigger ``done`` like the legacy process-completion event."""
        done = self.done
        done._ok = True
        done._value = delivered
        if done.callbacks or sync:
            self.env.schedule(done)
        else:
            # Nobody registered interest by delivery time: mark the
            # event processed without a kernel round-trip.  A later
            # ``yield done`` resumes immediately, exactly as yielding a
            # long-completed legacy process event would.
            done.callbacks = None
        # The transfer (and its internal hop event) is now idle; hand it
        # back to the fabric for the next send().  ``done`` stays with
        # the caller and is never recycled.  Unbinding (rather than
        # None-ing) the slots drops the references while pooled without
        # widening the attribute types to Optional.
        del self.message
        self.claim = None
        del self.done
        self.fabric._transfer_pool.append(self)

    def _drop(
        self, node_id: str, reason: str, counter_attr: str, sync: bool = False
    ) -> None:
        fabric = self.fabric
        fabric.dropped += 1
        counters = fabric.counters
        setattr(counters, counter_attr, getattr(counters, counter_attr) + 1)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_drop", node_id,
                reason=reason, **self.message.trace_detail()
            )
        self._finish(False, sync=sync)

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _start(self, _event: Event) -> None:
        """Stage 1 (legacy kernel): sender check at the URGENT hop pop."""
        message = self.message
        src: NetworkNode = message.src
        if not src.is_up:
            self._drop(src.node_id, "sender_down", "dropped_sender_down")
            return
        self._claim_port(src, message)

    def _claim_port(self, src: NetworkNode, message: Message) -> None:
        """Stage 1 body: queue on / claim the sender's output port."""
        self.entered_port = self.env.now
        port = src.output_port
        if port.try_claim(self):
            # Uncontended: no Request/grant event, start transmitting now.
            self.claim = self
            self._next_hop(
                self._cb_transmit,
                self._overhead_s + message.size_kb / src.uplink_kbps,
            )
        else:
            request = port.request()
            self.claim = request
            request.callbacks.append(self._granted)

    def _granted(self, _event: Event) -> None:
        """Stage 1b (contended): the port's FIFO queue reached us."""
        message = self.message
        src: NetworkNode = message.src
        self._next_hop(
            self._cb_transmit,
            self._overhead_s + message.size_kb / src.uplink_kbps,
        )

    def _transmit_done(self, _event: Event) -> None:
        """Stage 2: bytes left the sender -- account, then propagate.

        The accounting and delay model below is the legacy generator's
        body (``NetworkFabric._transfer``) with ``record_sent`` /
        ``_delay_components`` inlined; the floating-point operation
        sequence and RNG draw order are preserved exactly.
        """
        env = self.env
        message = self.message
        src: NetworkNode = message.src
        dst: NetworkNode = message.dst
        counters = self._counters
        # Release before accounting: the legacy generator's with-block
        # exit grants the next waiter ahead of this message's bookkeeping.
        src.output_port.release_fast(self.claim)
        counters.queueing_s += env._now - self.entered_port

        distance, base, link_key, same_isp = self._path(src, dst)
        size_kb = message.size_kb
        self._record(message, distance)
        counters.messages_sent += 1
        counters.bytes_kb += size_kb
        link_bytes = counters.link_bytes_kb
        link_bytes[link_key] = link_bytes.get(link_key, 0.0) + size_kb
        tracer = env.tracer
        if tracer.enabled:
            tracer.emit(env.now, "msg_send", src.node_id, **message.trace_detail())

        jitter = self._jitter(base, self._jitter_frac) - base
        propagation = max(0.0, base + jitter)
        if same_isp:
            penalty = 0.0
        else:
            inter = self._inter
            penalty = max(
                0.0,
                inter.base_s + self._isp_uniform(-inter.jitter_s, inter.jitter_s),
            )
        counters.propagation_s += propagation
        if penalty > 0.0:
            counters.isp_penalty_s += penalty
            counters.isp_crossing_messages += 1
            counters.isp_crossing_kb += size_kb
        self._next_hop(self._cb_deliver, propagation + penalty)

    def _deliver(self, _event: Event) -> None:
        """Stage 3: receiver check, accounting, then delivery.

        The counter increment and ``msg_recv`` trace run *before* the
        handoff: with a fast-kernel consumer attached the receiving
        actor's handler runs synchronously inside ``deliver()``, and its
        own traces must follow the ``msg_recv`` that caused them.  The
        reorder is bit-safe for store delivery too -- neither counters
        nor ``tracer.emit`` touch the event queue.
        """
        message = self.message
        dst: NetworkNode = message.dst
        if not dst.is_up:
            self._drop(dst.node_id, "receiver_down", "dropped_receiver_down")
            return
        self._counters.messages_delivered += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_recv", dst.node_id, **message.trace_detail()
            )
        dst.deliver(message)
        self._finish(True)


class NetworkFabric:
    """Carries messages between :class:`NetworkNode` objects."""

    def __init__(
        self,
        env: Environment,
        ledger: Optional[TrafficLedger] = None,
        params: Optional[FabricParams] = None,
        streams: Optional[StreamRegistry] = None,
        legacy_transport: Optional[bool] = None,
        path_cache: Optional[Dict[Tuple[str, str], Tuple[float, float, str, bool]]] = None,
    ) -> None:
        self.env = env
        self.ledger = ledger if ledger is not None else TrafficLedger()
        self.params = params if params is not None else FabricParams()
        streams = streams if streams is not None else StreamRegistry(0)
        self._jitter_stream: RandomStream = streams.stream("fabric.jitter")
        self._isp_stream: RandomStream = streams.stream("fabric.isp")
        #: Messages dropped because the receiver was down.
        self.dropped = 0
        #: Always-on per-layer accounting (see :mod:`repro.obs.counters`).
        self.counters = FabricCounters()
        if legacy_transport is None:
            legacy_transport = os.environ.get(
                LEGACY_TRANSPORT_ENV, ""
            ).strip().lower() in ("1", "true", "yes", "on")
        #: ``True`` runs the original generator-backed transport.
        self.legacy_transport = bool(legacy_transport)
        #: ``(src_id, dst_id) -> (distance_km, min_latency_s, link_key,
        #: same_isp)``.  Node positions, ISP homes, and fabric params are
        #: fixed for a run, so the trig, stretch arithmetic, and link-key
        #: string happen once per directed pair.  The testbed passes a
        #: shared dict here for sweep points that reuse a topology (the
        #: entries are pure derived geometry, valid for any run over the
        #: same placement and default params).
        self._path_cache: Dict[Tuple[str, str], Tuple[float, float, str, bool]] = (
            path_cache if path_cache is not None else {}
        )
        #: Recycled :class:`_FastTransfer` objects (with their internal
        #: hop events); avoids two allocations per message on the fast
        #: path.  Only transfers that have fully finished live here.
        self._transfer_pool: List[_FastTransfer] = []

    # ------------------------------------------------------------------
    # delay model
    # ------------------------------------------------------------------
    def _path(self, src: NetworkNode, dst: NetworkNode) -> Tuple[float, float, str, bool]:
        """Memoised ``(distance_km, min_latency_s, link_key, same_isp)``."""
        key = (src.node_id, dst.node_id)
        entry = self._path_cache.get(key)
        if entry is None:
            distance = src.distance_km(dst)
            params = self.params
            entry = (
                distance,
                params.base_latency_s
                + distance * params.path_stretch / params.speed_km_per_s,
                "%s->%s" % (src.node_id, dst.node_id),
                src.isp.isp_id == dst.isp.isp_id,
            )
            self._path_cache[key] = entry
        return entry

    def min_latency_s(self, src: NetworkNode, dst: NetworkNode) -> float:
        """Deterministic one-way latency (no jitter, no queueing).

        Used by proximity-aware tree building as the "inter-ping latency"
        measure of Section 4.
        """
        return self._path(src, dst)[1]

    def _delay_components(self, src: NetworkNode, dst: NetworkNode) -> "tuple[float, float]":
        """One-way delay split into (propagation incl. jitter, ISP penalty)."""
        base = self._path(src, dst)[1]
        jitter = self._jitter_stream.jitter(base, self.params.latency_jitter_frac) - base
        penalty = self.params.inter_isp.penalty(src.isp, dst.isp, self._isp_stream)
        return max(0.0, base + jitter), penalty

    def _one_way_delay(self, src: NetworkNode, dst: NetworkNode) -> float:
        propagation, penalty = self._delay_components(src, dst)
        return propagation + penalty

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, message: Message) -> Event:
        """Send *message*; the returned event fires at delivery time.

        The event's value is ``True`` if the message reached the
        receiver's inbox and ``False`` if it was dropped (receiver down).
        A down *sender* drops the message immediately.
        """
        message.created_at = self.env.now
        if self.legacy_transport:
            return self.env.process(self._transfer(message))
        pool = self._transfer_pool
        transfer = pool.pop() if pool else _FastTransfer(self)
        return transfer._launch(message)

    def _transfer(self, message: Message) -> Generator[Event, Any, bool]:
        """Legacy generator transport (``REPRO_LEGACY_TRANSPORT=1``)."""
        src: NetworkNode = message.src
        dst: NetworkNode = message.dst
        counters = self.counters
        tracer = self.env.tracer
        if not src.is_up:
            self.dropped += 1
            counters.dropped_sender_down += 1
            if tracer.enabled:
                tracer.emit(
                    self.env.now, "msg_drop", src.node_id,
                    reason="sender_down", **message.trace_detail()
                )
            return False

        # 1-2. Queue on, then occupy, the sender's output port.
        entered_port = self.env.now
        with src.output_port.request() as grant:
            yield grant
            yield self.env.timeout(
                self.params.per_message_overhead_s
                + src.transmission_delay(message.size_kb)
            )
        counters.queueing_s += self.env.now - entered_port

        # The bytes have left the sender: account for them.
        distance = self._path(src, dst)[0]
        self.ledger.record(message, distance)
        counters.record_sent(src.node_id, dst.node_id, message.size_kb)
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_send", src.node_id, **message.trace_detail()
            )

        # 3-4. Propagate (incl. possible inter-ISP penalty).
        propagation, penalty = self._delay_components(src, dst)
        counters.record_propagation(propagation, penalty, message.size_kb)
        yield self.env.timeout(propagation + penalty)

        if not dst.is_up:
            self.dropped += 1
            counters.dropped_receiver_down += 1
            if tracer.enabled:
                tracer.emit(
                    self.env.now, "msg_drop", dst.node_id,
                    reason="receiver_down", **message.trace_detail()
                )
            return False
        counters.messages_delivered += 1
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_recv", dst.node_id, **message.trace_detail()
            )
        dst.deliver(message)
        return True

    def rtt_s(self, a: NetworkNode, b: NetworkNode) -> float:
        """Deterministic round-trip latency estimate between two nodes."""
        return 2.0 * self.min_latency_s(a, b)
