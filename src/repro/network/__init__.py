"""Network substrate: geography, ISPs, nodes, messages and the fabric."""

from .geo import City, CityCatalog, EARTH_RADIUS_KM, GeoPoint, WORLD_CITIES, haversine_km
from .isp import ISP, ISPRegistry, InterISPModel
from .link import FabricParams, NetworkFabric, SPEED_OF_LIGHT_FIBRE_KM_S
from .message import LIGHT_KINDS, Message, MessageKind, UPDATE_KINDS
from .node import DEFAULT_PROVIDER_UPLINK_KBPS, DEFAULT_UPLINK_KBPS, NetworkNode
from .topology import Topology, TopologyBuilder

__all__ = [
    "GeoPoint",
    "haversine_km",
    "City",
    "CityCatalog",
    "WORLD_CITIES",
    "EARTH_RADIUS_KM",
    "ISP",
    "ISPRegistry",
    "InterISPModel",
    "Message",
    "MessageKind",
    "LIGHT_KINDS",
    "UPDATE_KINDS",
    "NetworkNode",
    "DEFAULT_UPLINK_KBPS",
    "DEFAULT_PROVIDER_UPLINK_KBPS",
    "NetworkFabric",
    "FabricParams",
    "SPEED_OF_LIGHT_FIBRE_KM_S",
    "Topology",
    "TopologyBuilder",
]
