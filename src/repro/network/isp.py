"""ISP model.

Section 3.4.3 of the paper shows that *inter-ISP* provider traffic adds
[3.69, 23.2] seconds of inconsistency on average compared to intra-ISP
traffic (competition for inter-domain transit capacity, citing [38]).
We model each node as belonging to one ISP; the network fabric charges an
extra inter-domain delay when a message crosses ISP boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..sim.rng import RandomStream

__all__ = ["ISP", "ISPRegistry", "InterISPModel"]


@dataclass(frozen=True)
class ISP:
    """An autonomous system / internet service provider."""

    isp_id: int
    name: str
    region: str


class ISPRegistry:
    """Creates and looks up ISPs; assigns nodes to region-appropriate ISPs.

    Mirrors the paper's setup where the CDN spans ~1,000 ISPs but each
    geographic cluster is dominated by a handful of them.
    """

    def __init__(self, isps_per_region: int = 6) -> None:
        if isps_per_region <= 0:
            raise ValueError("isps_per_region must be positive")
        self.isps_per_region = isps_per_region
        self._by_region: Dict[str, List[ISP]] = {}
        self._all: List[ISP] = []

    def _ensure_region(self, region: str) -> List[ISP]:
        isps = self._by_region.get(region)
        if isps is None:
            isps = []
            for i in range(self.isps_per_region):
                isp = ISP(len(self._all), "%s-isp-%d" % (region, i), region)
                isps.append(isp)
                self._all.append(isp)
            self._by_region[region] = isps
        return isps

    def all_isps(self) -> Sequence[ISP]:
        return tuple(self._all)

    def assign(self, region: str, stream: RandomStream) -> ISP:
        """Pick an ISP for a node in *region* (Zipf-ish skew: big ISPs
        carry more of a region's servers, as in real deployments)."""
        isps = self._ensure_region(region)
        weights = [1.0 / (rank + 1) for rank in range(len(isps))]
        return stream.choices(isps, weights=weights, k=1)[0]


@dataclass
class InterISPModel:
    """Extra one-way delay charged when a message crosses ISPs.

    ``base_s`` is the systematic inter-domain handoff cost and
    ``jitter_s`` the half-width of its uniform fluctuation (transit-link
    congestion varies over time).
    """

    base_s: float = 0.030
    jitter_s: float = 0.020

    def penalty(self, src_isp: ISP, dst_isp: ISP, stream: RandomStream) -> float:
        """One-way extra delay in seconds (0 for intra-ISP traffic)."""
        if src_isp.isp_id == dst_isp.isp_id:
            return 0.0
        jitter = stream.uniform(-self.jitter_s, self.jitter_s)
        return max(0.0, self.base_s + jitter)
