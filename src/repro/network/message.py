"""Message taxonomy for consistency maintenance and content delivery.

Section 5.3 of the paper distinguishes *update messages* (carrying a
content body -- "usually much larger than the size of other messages")
from *light messages* (update polls, invalidation notices, structure
maintenance).  Every message in the simulation is tagged with a
:class:`MessageKind` so the ledger can reproduce that split exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["MessageKind", "Message", "LIGHT_KINDS", "UPDATE_KINDS"]


class MessageKind(enum.Enum):
    """All message types exchanged in the simulated CDN."""

    # Members are process-wide singletons, so the identity hash is
    # correct -- and C-speed, unlike ``enum.Enum.__hash__`` (a Python
    # function that dominates ledger/counter dict lookups at CDN scale).
    __hash__ = object.__hash__

    # --- consistency maintenance: update (heavy) messages --------------
    PUSH_UPDATE = "push_update"          # provider/parent pushes new body
    POLL_RESPONSE = "poll_response"      # poll answered *with a new body*
    FETCH_RESPONSE = "fetch_response"    # invalidation-triggered fetch body

    # --- consistency maintenance: light messages -----------------------
    POLL = "poll"                        # TTL poll request
    POLL_NOT_MODIFIED = "poll_not_modified"  # poll answered "unchanged"
    INVALIDATE = "invalidate"            # invalidation notice
    FETCH = "fetch"                      # fetch request after invalidation
    SWITCH_NOTICE = "switch_notice"      # self-adaptive TTL<->Inval notice
    TREE_MAINTENANCE = "tree_maintenance"  # multicast-tree join/repair

    # --- content delivery (end-user traffic, not consistency) ----------
    CONTENT_REQUEST = "content_request"
    CONTENT_RESPONSE = "content_response"

    # --- DNS ------------------------------------------------------------
    DNS_QUERY = "dns_query"
    DNS_RESPONSE = "dns_response"


#: Message kinds that carry a content body (the paper's "update messages").
UPDATE_KINDS = frozenset(
    {MessageKind.PUSH_UPDATE, MessageKind.POLL_RESPONSE, MessageKind.FETCH_RESPONSE}
)

#: Consistency-maintenance messages without a body ("light messages").
LIGHT_KINDS = frozenset(
    {
        MessageKind.POLL,
        MessageKind.POLL_NOT_MODIFIED,
        MessageKind.INVALIDATE,
        MessageKind.FETCH,
        MessageKind.SWITCH_NOTICE,
        MessageKind.TREE_MAINTENANCE,
    }
)

#: Process-wide message sequence counter.  Seq values never feed a
#: simulated outcome (request/response pairing is per-message and the
#: metrics never read them), but they do appear in trace details, so
#: :func:`reset_seq` below rebases the counter per deployment build --
#: traces are then a function of the run, not of process history.
_SEQ = 0


def _next_seq() -> int:
    global _SEQ  # repro: noqa REP010 -- counter is reset per deployment build (reset_seq); values never feed metrics
    _SEQ += 1
    return _SEQ


def reset_seq() -> None:
    """Rebase the message counter (called once per deployment build).

    Makes trace ``seq`` fields -- and therefore whole trace streams --
    bit-identical for identical runs regardless of what else the
    process simulated earlier, which is what lets the schedule
    sanitizer compare replica traces within one process.
    """
    global _SEQ  # repro: noqa REP010 -- the reset that makes the counter run-deterministic
    _SEQ = 0


@dataclass(slots=True)
class Message:
    """A single message in flight.

    ``version`` is the content-snapshot index the message refers to
    (``None`` for DNS / maintenance messages).  ``payload`` carries
    protocol-specific extras (e.g. the poller's reply inbox).
    """

    kind: MessageKind
    src: Any
    dst: Any
    size_kb: float
    version: Optional[int] = None
    payload: Any = None
    created_at: float = 0.0
    seq: int = field(default_factory=_next_seq)

    @property
    def is_update(self) -> bool:
        """``True`` if this is a body-carrying update message."""
        return self.kind in UPDATE_KINDS

    @property
    def is_light(self) -> bool:
        """``True`` if this is a light consistency-maintenance message."""
        return self.kind in LIGHT_KINDS

    @property
    def is_consistency(self) -> bool:
        """``True`` if the message belongs to consistency maintenance."""
        return self.is_update or self.is_light

    def trace_detail(self) -> dict:
        """The structured-trace payload describing this message (see
        :mod:`repro.obs.tracer`)."""
        return {
            "msg": self.kind.value,
            "src": getattr(self.src, "node_id", str(self.src)),
            "dst": getattr(self.dst, "node_id", str(self.dst)),
            "kb": self.size_kb,
            "version": self.version,
            "seq": self.seq,
        }

    def __repr__(self) -> str:
        return "Message(%s, %s->%s, v=%s, %.1fKB)" % (
            self.kind.value,
            getattr(self.src, "node_id", self.src),
            getattr(self.dst, "node_id", self.dst),
            self.version,
            self.size_kb,
        )
