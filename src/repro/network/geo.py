"""Geographic primitives: coordinates, distance, and a world-city catalog.

The paper places CDN servers at real geographic locations (geolocated via
IPLOCATION) concentrated in the U.S., Europe and Asia; the evaluation
testbed (Section 4) uses 170 PlanetLab nodes "mainly in the U.S., Europe,
and Asia" with the provider in Atlanta.  We reproduce that layout with a
catalog of real city coordinates plus small jitter for co-located servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim.rng import RandomStream

__all__ = [
    "GeoPoint",
    "haversine_km",
    "City",
    "WORLD_CITIES",
    "CityCatalog",
    "EARTH_RADIUS_KM",
]

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the globe (degrees).

    The radian form and the cosine of the latitude are precomputed once
    at construction so every haversine evaluation is pure arithmetic --
    no trig conversions on the distance hot path.
    """

    lat: float
    lon: float
    #: Derived values (identical to ``math.radians``/``math.cos`` of the
    #: degree fields, so distances are bit-identical to computing inline).
    lat_rad: float = field(init=False, repr=False, compare=False)
    lon_rad: float = field(init=False, repr=False, compare=False)
    cos_lat: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError("latitude out of range: %r" % (self.lat,))
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError("longitude out of range: %r" % (self.lon,))
        object.__setattr__(self, "lat_rad", math.radians(self.lat))
        object.__setattr__(self, "lon_rad", math.radians(self.lon))
        object.__setattr__(self, "cos_lat", math.cos(self.lat_rad))

    def distance_km(self, other: "GeoPoint") -> float:
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    dlat = b.lat_rad - a.lat_rad
    dlon = b.lon_rad - a.lon_rad
    h = math.sin(dlat / 2.0) ** 2 + a.cos_lat * b.cos_lat * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


@dataclass(frozen=True)
class City:
    """A named location used to place simulated nodes."""

    name: str
    point: GeoPoint
    region: str  # "us" | "europe" | "asia" | "other"


def _city(name: str, lat: float, lon: float, region: str) -> City:
    return City(name, GeoPoint(lat, lon), region)


#: Real-world city coordinates.  Regions are weighted to follow the
#: paper's description of the CDN footprint (mainly U.S./Europe/Asia).
WORLD_CITIES: Tuple[City, ...] = (
    # United States
    _city("Atlanta", 33.749, -84.388, "us"),
    _city("New York", 40.713, -74.006, "us"),
    _city("Chicago", 41.878, -87.630, "us"),
    _city("Los Angeles", 34.052, -118.244, "us"),
    _city("San Francisco", 37.775, -122.419, "us"),
    _city("Seattle", 47.606, -122.332, "us"),
    _city("Dallas", 32.777, -96.797, "us"),
    _city("Miami", 25.762, -80.192, "us"),
    _city("Denver", 39.739, -104.990, "us"),
    _city("Boston", 42.360, -71.059, "us"),
    _city("Washington DC", 38.907, -77.037, "us"),
    _city("Detroit", 42.331, -83.046, "us"),
    _city("Houston", 29.760, -95.370, "us"),
    _city("Phoenix", 33.448, -112.074, "us"),
    _city("Minneapolis", 44.978, -93.265, "us"),
    _city("Salt Lake City", 40.761, -111.891, "us"),
    # Europe
    _city("London", 51.507, -0.128, "europe"),
    _city("Paris", 48.857, 2.352, "europe"),
    _city("Frankfurt", 50.110, 8.682, "europe"),
    _city("Amsterdam", 52.368, 4.904, "europe"),
    _city("Madrid", 40.417, -3.704, "europe"),
    _city("Milan", 45.464, 9.190, "europe"),
    _city("Stockholm", 59.329, 18.069, "europe"),
    _city("Warsaw", 52.230, 21.012, "europe"),
    _city("Zurich", 47.377, 8.541, "europe"),
    _city("Dublin", 53.349, -6.260, "europe"),
    _city("Vienna", 48.208, 16.374, "europe"),
    _city("Prague", 50.075, 14.438, "europe"),
    # Asia / Pacific
    _city("Tokyo", 35.677, 139.650, "asia"),
    _city("Seoul", 37.566, 126.978, "asia"),
    _city("Singapore", 1.352, 103.820, "asia"),
    _city("Hong Kong", 22.319, 114.169, "asia"),
    _city("Beijing", 39.904, 116.407, "asia"),
    _city("Shanghai", 31.230, 121.474, "asia"),
    _city("Taipei", 25.033, 121.565, "asia"),
    _city("Mumbai", 19.076, 72.878, "asia"),
    _city("Bangalore", 12.972, 77.594, "asia"),
    _city("Sydney", -33.869, 151.209, "asia"),
    _city("Osaka", 34.694, 135.502, "asia"),
    _city("Jakarta", -6.175, 106.827, "asia"),
    # Other
    _city("Sao Paulo", -23.551, -46.633, "other"),
    _city("Toronto", 43.651, -79.383, "other"),
    _city("Mexico City", 19.433, -99.133, "other"),
    _city("Johannesburg", -26.204, 28.047, "other"),
    _city("Tel Aviv", 32.085, 34.782, "other"),
    _city("Buenos Aires", -34.603, -58.382, "other"),
)

#: Region weights following "mainly in the U.S., Europe, and Asia".
DEFAULT_REGION_WEIGHTS = {"us": 0.45, "europe": 0.28, "asia": 0.22, "other": 0.05}


class CityCatalog:
    """Weighted sampler over :data:`WORLD_CITIES` with coordinate jitter."""

    def __init__(
        self,
        cities: Sequence[City] = WORLD_CITIES,
        region_weights: Optional[dict] = None,
    ) -> None:
        if not cities:
            raise ValueError("catalog must contain at least one city")
        self.cities: List[City] = list(cities)
        weights = dict(DEFAULT_REGION_WEIGHTS if region_weights is None else region_weights)
        region_counts: dict = {}
        for city in self.cities:
            region_counts[city.region] = region_counts.get(city.region, 0) + 1
        self._weights = [
            weights.get(city.region, 0.0) / region_counts[city.region]
            for city in self.cities
        ]
        if not any(w > 0 for w in self._weights):
            raise ValueError("region weights select no city")

    def by_name(self, name: str) -> City:
        for city in self.cities:
            if city.name == name:
                return city
        raise KeyError(name)

    def sample_city(self, stream: RandomStream) -> City:
        return stream.choices(self.cities, weights=self._weights, k=1)[0]

    def sample_point(self, stream: RandomStream, jitter_deg: float = 0.25) -> Tuple[City, GeoPoint]:
        """Sample a city and a jittered point near it.

        Jitter models distinct data centres within the same metro area; it
        is clamped so the point stays on the globe.
        """
        city = self.sample_city(stream)
        lat = max(-90.0, min(90.0, city.point.lat + stream.uniform(-jitter_deg, jitter_deg)))
        lon = city.point.lon + stream.uniform(-jitter_deg, jitter_deg)
        if lon > 180.0:
            lon -= 360.0
        elif lon < -180.0:
            lon += 360.0
        return city, GeoPoint(lat, lon)
