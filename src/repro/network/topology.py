"""Topology builders: place provider / server / user nodes on the globe.

Reproduces the layouts used in the paper:

- Section 4 testbed: one provider in Atlanta plus N geographically
  distributed servers (mainly U.S. / Europe / Asia), five end-users per
  server location.
- Section 3 trace: thousands of servers clustered in metro areas across
  many ISPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.engine import Environment
from ..sim.rng import StreamRegistry
from .geo import CityCatalog, GeoPoint
from .isp import ISP, ISPRegistry
from .node import (
    DEFAULT_PROVIDER_UPLINK_KBPS,
    DEFAULT_UPLINK_KBPS,
    NetworkNode,
)

__all__ = ["Topology", "TopologyBuilder"]


@dataclass
class Topology:
    """The placed nodes of one simulated deployment."""

    provider: NetworkNode
    servers: List[NetworkNode] = field(default_factory=list)
    #: users[i] are the end-user nodes homed at servers[i]'s location.
    users: List[List[NetworkNode]] = field(default_factory=list)

    def all_nodes(self) -> List[NetworkNode]:
        nodes = [self.provider] + list(self.servers)
        for group in self.users:
            nodes.extend(group)
        return nodes

    @property
    def n_servers(self) -> int:
        return len(self.servers)


class TopologyBuilder:
    """Builds :class:`Topology` objects with deterministic placement."""

    def __init__(
        self,
        env: Environment,
        streams: StreamRegistry,
        catalog: Optional[CityCatalog] = None,
        isps: Optional[ISPRegistry] = None,
    ) -> None:
        self.env = env
        self.streams = streams
        self.catalog = catalog if catalog is not None else CityCatalog()
        self.isps = isps if isps is not None else ISPRegistry()

    # ------------------------------------------------------------------
    def make_provider(
        self,
        city_name: str = "Atlanta",
        uplink_kbps: float = DEFAULT_PROVIDER_UPLINK_KBPS,
    ) -> NetworkNode:
        """Place the content provider (paper: one node in Atlanta)."""
        city = self.catalog.by_name(city_name)
        isp = self.isps.assign(city.region, self.streams.stream("topology.isp"))
        return NetworkNode(
            self.env,
            node_id="provider",
            point=city.point,
            isp=isp,
            uplink_kbps=uplink_kbps,
            city_name=city.name,
        )

    def make_server(self, index: int, uplink_kbps: float = DEFAULT_UPLINK_KBPS) -> NetworkNode:
        """Place one content server at a sampled city."""
        place_stream = self.streams.stream("topology.place")
        isp_stream = self.streams.stream("topology.isp")
        city, point = self.catalog.sample_point(place_stream)
        isp = self.isps.assign(city.region, isp_stream)
        return NetworkNode(
            self.env,
            node_id="server-%d" % index,
            point=point,
            isp=isp,
            uplink_kbps=uplink_kbps,
            city_name=city.name,
        )

    def make_user(self, server: NetworkNode, index: int) -> NetworkNode:
        """Place an end-user near *server* (same metro, same ISP pool)."""
        place_stream = self.streams.stream("topology.place")
        lat = max(-90.0, min(90.0, server.point.lat + place_stream.uniform(-0.1, 0.1)))
        lon = server.point.lon + place_stream.uniform(-0.1, 0.1)
        if lon > 180.0:
            lon -= 360.0
        elif lon < -180.0:
            lon += 360.0
        return NetworkNode(
            self.env,
            node_id="%s-user-%d" % (server.node_id, index),
            point=GeoPoint(lat, lon),
            isp=server.isp,
            uplink_kbps=DEFAULT_UPLINK_KBPS,
            city_name=server.city_name,
        )

    def build(
        self,
        n_servers: int,
        users_per_server: int = 5,
        provider_city: str = "Atlanta",
        provider_uplink_kbps: float = DEFAULT_PROVIDER_UPLINK_KBPS,
        server_uplink_kbps: float = DEFAULT_UPLINK_KBPS,
        user_shards: int = 1,
        user_shard: int = 0,
    ) -> Topology:
        """Build the full Section-4-style deployment.

        *user_shards* / *user_shard* deterministically partition the
        user population: this topology places only the users whose
        per-server index ``u`` satisfies ``u % user_shards ==
        user_shard``, keeping the *global* index in the node id
        (``server-3-user-7`` names the same logical user in every
        sharding).  The provider and all servers are placed identically
        in every shard -- server draws precede user draws on the
        placement streams -- so a sharded run is the same server plane
        serving a disjoint slice of users, and shard metrics merge
        exactly (see ``repro.experiments.sharding``).
        """
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if users_per_server < 0:
            raise ValueError("users_per_server must be >= 0")
        if user_shards < 1:
            raise ValueError("user_shards must be >= 1")
        if not 0 <= user_shard < user_shards:
            raise ValueError("user_shard must be in [0, user_shards)")
        provider = self.make_provider(provider_city, provider_uplink_kbps)
        servers = [self.make_server(i, server_uplink_kbps) for i in range(n_servers)]
        users = [
            [
                self.make_user(server, u)
                for u in range(users_per_server)
                if u % user_shards == user_shard
            ]
            for server in servers
        ]
        return Topology(provider=provider, servers=servers, users=users)
