"""Update-method advisor: the paper's guidance table as code.

Section 4.6 ends with guidance for "appropriate selections of
consistency maintenance infrastructures and methods":

- high-consistency contents (stock tickers, e-commerce, live games)
  => Push;
- contents visited less often than they update => Invalidation ("it can
  save traffic cost compared to Push if the content visit rates on
  servers ... are smaller than the update rate", Section 1);
- tolerant contents with frequent updates => TTL, which aggregates all
  updates within a TTL into one transfer;
- bursty update patterns with long silences => the self-adaptive switch
  (Section 5.1);
- and the proximity-aware multicast tree whenever traffic cost
  dominates and the method is push-style (TTL over a tree suffers depth
  amplification, Fig. 15/20).

:class:`MethodAdvisor` turns measured workload rates plus a tolerance
into that recommendation, with a transparent cost model
(:meth:`expected_messages_per_hour`) so callers can audit the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["WorkloadProfile", "Recommendation", "MethodAdvisor"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured characteristics of one content on one deployment."""

    #: Updates per second at the origin, averaged over the window.
    update_rate_per_s: float
    #: Visits per second per edge server, averaged over the window.
    visit_rate_per_s: float
    #: Number of edge replicas.
    n_servers: int
    #: Burstiness of updates: fraction of wall-clock time with no update
    #: activity (0 = steady stream, ~1 = rare bursts).
    silence_fraction: float = 0.0
    #: Average updates per activity burst (used to estimate how many
    #: invalidation round-trips the self-adaptive method pays).
    updates_per_burst: float = 10.0

    def __post_init__(self) -> None:
        if self.update_rate_per_s < 0 or self.visit_rate_per_s < 0:
            raise ValueError("rates must be >= 0")
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if not 0.0 <= self.silence_fraction <= 1.0:
            raise ValueError("silence_fraction must be in [0, 1]")
        if self.updates_per_burst < 1:
            raise ValueError("updates_per_burst must be >= 1")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict."""

    method: str            # "push" | "invalidation" | "ttl" | "self-adaptive"
    infrastructure: str    # "unicast" | "multicast"
    ttl_s: Optional[float]
    #: Expected *replica* staleness; under Push/Invalidation end users
    #: still always receive fresh content (fetch happens before serving).
    expected_staleness_s: float
    expected_messages_per_hour: float
    expected_kb_per_hour: float
    reason: str


class MethodAdvisor:
    """Recommends an update method from a workload profile and a
    staleness tolerance."""

    def __init__(
        self,
        multicast_threshold_servers: int = 200,
        min_ttl_s: float = 5.0,
        max_ttl_s: float = 300.0,
        update_size_kb: float = 10.0,
        light_size_kb: float = 1.0,
    ) -> None:
        if multicast_threshold_servers <= 0:
            raise ValueError("multicast_threshold_servers must be positive")
        if not 0 < min_ttl_s <= max_ttl_s:
            raise ValueError("need 0 < min_ttl_s <= max_ttl_s")
        if update_size_kb <= 0 or light_size_kb <= 0:
            raise ValueError("message sizes must be positive")
        self.multicast_threshold_servers = multicast_threshold_servers
        self.min_ttl_s = min_ttl_s
        self.max_ttl_s = max_ttl_s
        self.update_size_kb = update_size_kb
        self.light_size_kb = light_size_kb

    # ------------------------------------------------------------------
    # cost model (messages per hour, across all servers)
    # ------------------------------------------------------------------
    def expected_messages_per_hour(
        self, profile: WorkloadProfile, method: str, ttl_s: Optional[float] = None
    ) -> float:
        """Consistency messages per hour under each method.

        Push: one body per update per server.  Invalidation: one notice
        per update per server plus one fetch pair per update that is
        actually visited before the next update.  TTL: one poll pair per
        TTL per server.  Self-adaptive: TTL cost during activity, one
        notice + one fetch pair per burst during silence.
        """
        updates = 3600.0 * profile.update_rate_per_s
        visits = 3600.0 * profile.visit_rate_per_s
        n = profile.n_servers
        if method == "push":
            return updates * n
        if method == "invalidation":
            fetch_fraction = min(1.0, _safe_ratio(visits, updates))
            return updates * n + 2.0 * updates * fetch_fraction * n
        if method == "ttl":
            ttl = ttl_s if ttl_s is not None else self.min_ttl_s
            return 2.0 * (3600.0 / ttl) * n
        if method == "self-adaptive":
            ttl = ttl_s if ttl_s is not None else self.min_ttl_s
            active = 1.0 - profile.silence_fraction
            ttl_cost = 2.0 * (3600.0 / ttl) * n * active
            # each burst costs one invalidation notice plus one fetch
            # round-trip per server before TTL polling resumes.
            bursts_per_hour = updates / profile.updates_per_burst
            burst_cost = 3.0 * n * bursts_per_hour
            return ttl_cost + burst_cost
        raise ValueError("unknown method %r" % (method,))

    def expected_kb_per_hour(
        self, profile: WorkloadProfile, method: str, ttl_s: Optional[float] = None
    ) -> float:
        """Consistency *bytes* per hour -- where Invalidation's saving
        over Push actually lives (Section 1: notices are light, bodies
        are not; unseen updates are never transferred).
        """
        updates = 3600.0 * profile.update_rate_per_s
        visits = 3600.0 * profile.visit_rate_per_s
        n = profile.n_servers
        body = self.update_size_kb
        light = self.light_size_kb
        if method == "push":
            return updates * n * body
        if method == "invalidation":
            fetch_fraction = min(1.0, _safe_ratio(visits, updates))
            return updates * n * light + updates * fetch_fraction * n * (light + body)
        if method == "ttl":
            ttl = ttl_s if ttl_s is not None else self.min_ttl_s
            polls = (3600.0 / ttl) * n
            # a poll round-trip transfers a body only when something
            # changed since the last poll
            hit_fraction = min(1.0, _safe_ratio(updates, 3600.0 / ttl))
            return polls * light + polls * (
                hit_fraction * body + (1.0 - hit_fraction) * light
            )
        if method == "self-adaptive":
            ttl = ttl_s if ttl_s is not None else self.min_ttl_s
            active = 1.0 - profile.silence_fraction
            bursts = updates / profile.updates_per_burst
            return (
                active * self.expected_kb_per_hour(profile, "ttl", ttl)
                + bursts * n * (2.0 * light + body)
            )
        raise ValueError("unknown method %r" % (method,))

    def expected_staleness_s(
        self, profile: WorkloadProfile, method: str, ttl_s: Optional[float] = None
    ) -> float:
        """First-order expected replica staleness under each method."""
        if method == "push":
            return 0.1  # delivery latency only
        if method == "invalidation":
            # stale until the next visit triggers the fetch
            return 0.1 + 0.5 * _safe_ratio(1.0, profile.visit_rate_per_s, cap=3600.0)
        ttl = ttl_s if ttl_s is not None else self.min_ttl_s
        return ttl / 2.0

    # ------------------------------------------------------------------
    def recommend(
        self, profile: WorkloadProfile, staleness_tolerance_s: float
    ) -> Recommendation:
        """Pick the cheapest method whose expected staleness fits the
        tolerance (the paper's decision logic, made explicit)."""
        if staleness_tolerance_s < 0:
            raise ValueError("staleness_tolerance_s must be >= 0")

        infrastructure = (
            "multicast"
            if profile.n_servers >= self.multicast_threshold_servers
            else "unicast"
        )

        # Strong consistency required: only Push (or Invalidation when
        # visits are sparse -- users still never see stale data).
        if staleness_tolerance_s < self.min_ttl_s:
            if profile.visit_rate_per_s < profile.update_rate_per_s:
                method = "invalidation"
                reason = (
                    "strong consistency with visits rarer than updates: "
                    "invalidation serves fresh on demand and skips unseen updates"
                )
            else:
                method = "push"
                reason = "strong consistency with hot content: push every update"
            return Recommendation(
                method=method,
                infrastructure=infrastructure,
                ttl_s=None,
                expected_staleness_s=self.expected_staleness_s(profile, method),
                expected_messages_per_hour=self.expected_messages_per_hour(profile, method),
                expected_kb_per_hour=self.expected_kb_per_hour(profile, method),
                reason=reason,
            )

        # Weak consistency: a TTL-family method with TTL = 2 * tolerance
        # (expected staleness = TTL/2) clamped to the configured range.
        ttl = min(self.max_ttl_s, max(self.min_ttl_s, 2.0 * staleness_tolerance_s))
        if profile.silence_fraction > 0.5:
            method = "self-adaptive"
            reason = (
                "bursty updates with long silences: poll during bursts, "
                "sit in invalidation mode through the silences (Sec 5.1)"
            )
        else:
            method = "ttl"
            reason = "steady updates within tolerance: plain TTL polling"
        # TTL over a deep tree amplifies staleness (Fig. 15): keep
        # pull-style methods on unicast.
        return Recommendation(
            method=method,
            infrastructure="unicast",
            ttl_s=ttl,
            expected_staleness_s=self.expected_staleness_s(profile, method, ttl),
            expected_messages_per_hour=self.expected_messages_per_hour(profile, method, ttl),
            expected_kb_per_hour=self.expected_kb_per_hour(profile, method, ttl),
            reason=reason,
        )

    def compare_all(
        self, profile: WorkloadProfile, ttl_s: float
    ) -> Dict[str, Dict[str, float]]:
        """Cost/staleness of every method side by side (for reports)."""
        return {
            method: {
                "messages_per_hour": self.expected_messages_per_hour(profile, method, ttl_s),
                "kb_per_hour": self.expected_kb_per_hour(profile, method, ttl_s),
                "staleness_s": self.expected_staleness_s(profile, method, ttl_s),
            }
            for method in ("push", "invalidation", "ttl", "self-adaptive")
        }


def _safe_ratio(numerator: float, denominator: float, cap: float = 1.0) -> float:
    if denominator <= 0:
        return cap
    return min(cap, numerator / denominator)
