"""Generic dynamic update method (the paper's stated future work).

Section 6: "we will study a more generic hybrid and self-adaptive
consistency maintenance method that can change the update method ...
by considering more factors, such as varying visit frequencies and
consistency requirements from customers."

:class:`DynamicPolicy` implements that system: each replica monitors
its own *visit rate* and *observed update rate* over a sliding decision
window and switches between three server-selectable modes --

- ``ttl``: periodic polling (cheap under steady updates, staleness
  bounded by the TTL);
- ``invalidation``: passive until the source sends a notice, fetch on
  the next visit (cheapest under silence or sparse visits, fresh for
  users);
- ``push``: subscribe to direct pushes (fresh, right when both visits
  and updates are frequent and the customer's staleness tolerance is
  tight) --

following the same decision logic as :class:`repro.core.advisor.
MethodAdvisor`.  The provider side is
:meth:`repro.cdn.provider.ProviderActor.use_dynamic`, which pushes to
push-subscribers and invalidates invalidation-mode members.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Tuple

from ..consistency.base import ServerPolicy
from ..network.message import Message, MessageKind
from ..sim.engine import Event
from ..sim.rng import RandomStream

__all__ = ["DynamicPolicy"]

MODE_TTL = "ttl"
MODE_INVALIDATION = "invalidation"
MODE_PUSH = "push"


class DynamicPolicy(ServerPolicy):
    """Per-replica mode switching driven by measured rates."""

    method_name = "dynamic"

    def __init__(
        self,
        ttl_s: float,
        staleness_tolerance_s: float,
        stream: Optional[RandomStream] = None,
        decision_interval_s: Optional[float] = None,
        fetch_timeout_s: Optional[float] = 60.0,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        if staleness_tolerance_s < 0:
            raise ValueError("staleness_tolerance_s must be >= 0")
        super().__init__()
        self.ttl_s = ttl_s
        self.staleness_tolerance_s = staleness_tolerance_s
        self.stream = stream
        self.decision_interval_s = (
            decision_interval_s if decision_interval_s is not None else 5.0 * ttl_s
        )
        if self.decision_interval_s <= 0:
            raise ValueError("decision_interval_s must be positive")
        self.fetch_timeout_s = fetch_timeout_s
        self.mode = MODE_TTL
        #: (switch time, new mode) history, for experiments.
        self.mode_history: List[Tuple[float, str]] = []
        self._visits_in_window = 0
        self._updates_in_window = 0
        self._fetch_inflight: Optional[Event] = None
        #: Debounce: a mode change needs two consecutive windows to
        #: agree, so borderline rate ratios do not flap the mode.
        self._pending_target: Optional[str] = None

    # ------------------------------------------------------------------
    def bind(self, server) -> None:
        super().bind(server)
        server.on_apply_hooks.append(self._count_update)

    def _count_update(self, version: int) -> None:
        self._updates_in_window += 1

    # ------------------------------------------------------------------
    def processes(self) -> Iterable[Generator]:
        return [self._control_loop()]

    def _control_loop(self) -> Generator:
        server = self.server
        env = server.env
        if self.stream is not None:
            yield env.timeout(self.stream.uniform(0.0, self.ttl_s))
        self.mode_history.append((env.now, self.mode))
        while True:
            window_end = env.now + self.decision_interval_s
            if self.mode == MODE_TTL:
                while env.now < window_end:
                    yield env.timeout(min(self.ttl_s, window_end - env.now))
                    if env.now >= window_end:
                        break
                    yield from self._poll_once()
            else:
                # push / invalidation: passive, the dispatcher feeds us.
                yield env.timeout(self.decision_interval_s)
            self._decide()

    def _poll_once(self) -> Generator:
        server = self.server
        response = yield from server.request(
            MessageKind.POLL,
            server.upstream,
            server.content.light_size_kb,
            payload={"have": server.cached_version},
            timeout=self.ttl_s,
        )
        if response is not None and response.kind is MessageKind.POLL_RESPONSE:
            server.apply_version(response.version, ttl=self.ttl_s)

    # ------------------------------------------------------------------
    def _decide(self) -> None:
        """Re-pick the mode from the window's measured rates."""
        window = self.decision_interval_s
        visit_rate = self._visits_in_window / window
        update_rate = self._updates_in_window / window
        self._visits_in_window = 0
        self._updates_in_window = 0

        if update_rate == 0.0:
            # Silence: sit in invalidation mode, cost nothing until the
            # source notices us (Algorithm 1's silence branch).
            target = MODE_INVALIDATION
        elif self.staleness_tolerance_s < self.ttl_s / 2.0:
            # Tight tolerance: push if the content is actually being
            # watched here, otherwise invalidation (users still always
            # get fresh data, but unseen updates are never transferred).
            target = MODE_PUSH if visit_rate >= update_rate else MODE_INVALIDATION
        else:
            # Tolerant + active: TTL polling aggregates update runs.
            target = MODE_TTL

        if target == self.mode:
            self._pending_target = None
        elif target == self._pending_target:
            self._pending_target = None
            self._switch_to(target)
        else:
            self._pending_target = target

    def _switch_to(self, target: str) -> None:
        server = self.server
        self.mode = target
        self.mode_history.append((server.env.now, target))
        server.send(
            MessageKind.SWITCH_NOTICE,
            server.upstream,
            server.content.light_size_kb,
            version=server.cached_version,
            payload={"mode": target},
        )

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def on_push(self, message: Message) -> None:
        self.server.apply_version(message.version, ttl=self.ttl_s)

    def on_invalidate(self, message: Message) -> None:
        self.server.mark_invalidated(message.version)

    def ensure_fresh(self) -> Generator:
        """Invalidation-mode recovery fetch (shared in-flight)."""
        server = self.server
        if not server.is_invalidated:
            return
        if self._fetch_inflight is not None:
            yield self._fetch_inflight
            return
        self._fetch_inflight = server.env.event()
        try:
            response = yield from server.request(
                MessageKind.FETCH,
                server.upstream,
                server.content.light_size_kb,
                timeout=self.fetch_timeout_s,
            )
            if response is not None:
                server.apply_version(response.version, ttl=self.ttl_s)
        finally:
            inflight, self._fetch_inflight = self._fetch_inflight, None
            inflight.succeed()

    def serve(self, message: Message) -> Generator:
        self._visits_in_window += 1
        yield from self.ensure_fresh()
        return self.server.cached_version
