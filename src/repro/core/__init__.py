"""The paper's primary contribution: the HAT hybrid and self-adaptive
update system (Section 5)."""

from .advisor import MethodAdvisor, Recommendation, WorkloadProfile
from .dynamic import DynamicPolicy
from .hat import HatConfig, HatSystem
from .supernode import ClusterSpec, form_clusters

__all__ = [
    "HatConfig",
    "HatSystem",
    "ClusterSpec",
    "form_clusters",
    "MethodAdvisor",
    "WorkloadProfile",
    "Recommendation",
    "DynamicPolicy",
]
