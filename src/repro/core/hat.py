"""HAT: the paper's Hybrid and self-AdapTive update system (Section 5).

Architecture (Fig. 21):

- servers are grouped into geographic clusters (Hilbert curve, one
  supernode each, :mod:`repro.core.supernode`);
- the provider **pushes** updates to the supernodes through a
  proximity-aware k-ary multicast tree (k = 4 in the paper) so supernode
  freshness does not suffer TTL depth amplification;
- inside each cluster, ordinary servers keep fresh against their
  supernode with the **self-adaptive** method (Algorithm 1): TTL polling
  during update bursts, Invalidation during silence.

``member_method`` selects between the full system (``"self-adaptive"``,
the paper's HAT) and the ``"ttl"`` variant (the paper's *Hybrid*
baseline: the same infrastructure but plain TTL inside clusters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cdn.content import LiveContent
from ..cdn.provider import ProviderActor
from ..cdn.server import ServerActor
from ..consistency.adaptive import SelfAdaptivePolicy
from ..consistency.multicast import MulticastTreeInfrastructure
from ..consistency.push import PushPolicy
from ..consistency.ttl import TTLPolicy
from ..network.link import NetworkFabric
from ..network.node import NetworkNode
from ..sim.engine import Environment
from ..sim.rng import StreamRegistry
from .supernode import ClusterSpec, form_clusters

__all__ = ["HatConfig", "HatSystem"]


@dataclass(kw_only=True)
class HatConfig:
    """Tunables of the HAT deployment."""

    n_clusters: int = 20
    tree_arity: int = 4
    server_ttl_s: float = 60.0
    #: "self-adaptive" (HAT proper) or "ttl" (the Hybrid baseline).
    member_method: str = "self-adaptive"

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if self.tree_arity < 1:
            raise ValueError("tree_arity must be >= 1")
        if self.server_ttl_s <= 0:
            raise ValueError("server_ttl_s must be positive")
        if self.member_method not in ("self-adaptive", "ttl"):
            raise ValueError("member_method must be 'self-adaptive' or 'ttl'")


class HatSystem:
    """Builds and owns the actors of a HAT deployment."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        streams: StreamRegistry,
        content: LiveContent,
        provider_node: NetworkNode,
        server_nodes: Sequence[NetworkNode],
        config: Optional[HatConfig] = None,
    ) -> None:
        if not server_nodes:
            raise ValueError("need at least one server node")
        self.env = env
        self.fabric = fabric
        self.streams = streams
        self.content = content
        self.config = config if config is not None else HatConfig()

        self.provider = ProviderActor(env, provider_node, fabric, content)
        self.clusters: List[ClusterSpec] = form_clusters(
            server_nodes, self.config.n_clusters, streams.stream("hat.supernode")
        )
        self.supernodes: List[ServerActor] = []
        self.members: List[ServerActor] = []
        #: node_id -> serving ServerActor (supernodes included).
        self.server_by_node_id: Dict[str, ServerActor] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        config = self.config

        # 1. Supernodes: passive Push replicas that relay down the tree.
        for spec in self.clusters:
            supernode = ServerActor(
                self.env,
                spec.supernode,
                self.fabric,
                self.content,
                policy=PushPolicy(forward=True),
            )
            # A fresh body landing on the supernode must invalidate the
            # cluster members currently sitting in Invalidation mode.
            supernode.on_apply_hooks.append(supernode.notify_adaptive_members)
            self.supernodes.append(supernode)
            self.server_by_node_id[spec.supernode.node_id] = supernode

        # 2. Proximity-aware k-ary Push tree over the supernodes.
        self.tree = MulticastTreeInfrastructure(self.fabric, arity=config.tree_arity)
        self.tree.wire(self.provider, self.supernodes)
        self.provider.use_push()

        # 3. Ordinary members update against their supernode.
        poll_stream = self.streams.stream("hat.member.phase")
        for spec, supernode in zip(self.clusters, self.supernodes):
            for node in spec.members:
                if config.member_method == "self-adaptive":
                    policy = SelfAdaptivePolicy(config.server_ttl_s, stream=poll_stream)
                else:
                    policy = TTLPolicy(config.server_ttl_s, stream=poll_stream)
                member = ServerActor(
                    self.env,
                    node,
                    self.fabric,
                    self.content,
                    policy=policy,
                    upstream=supernode.node,
                )
                self.members.append(member)
                self.server_by_node_id[node.node_id] = member

    # ------------------------------------------------------------------
    @property
    def servers(self) -> List[ServerActor]:
        """Every content-serving actor (supernodes first)."""
        return self.supernodes + self.members

    def start(self) -> None:
        """Launch all server background processes."""
        for server in self.servers:
            server.start()

    def supernode_of(self, node: NetworkNode) -> ServerActor:
        """The supernode actor serving the cluster containing *node*."""
        for spec, supernode in zip(self.clusters, self.supernodes):
            if node is spec.supernode or node in spec.members:
                return supernode
        raise KeyError(node.node_id)

    def tree_depth(self) -> int:
        """Depth of the supernode Push tree."""
        return self.tree.max_depth()

    def start_monitor(
        self, heartbeat_s: float = 30.0, failure_timeout_s: Optional[float] = None
    ) -> None:
        """Start automatic supernode failure detection.

        Every ``heartbeat_s`` each supernode is probed (one light
        TREE_MAINTENANCE message from its nearest member, charged to the
        ledger); a supernode unreachable for ``failure_timeout_s``
        triggers :meth:`handle_supernode_failure`.
        """
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        timeout = failure_timeout_s if failure_timeout_s is not None else 2.5 * heartbeat_s
        if timeout < heartbeat_s:
            raise ValueError("failure_timeout_s must be >= heartbeat_s")
        self.env.process(self._monitor_loop(heartbeat_s, timeout))

    def _monitor_loop(self, heartbeat_s: float, failure_timeout_s: float):
        from ..network.message import MessageKind

        down_since: Dict[str, float] = {}
        while True:
            yield self.env.timeout(heartbeat_s)
            # snapshot pairs: failover mutates both lists in lockstep
            for supernode, spec in list(zip(self.supernodes, self.clusters)):
                # probe: the nearest live member pings its supernode
                prober = None
                for node in spec.members:
                    if node.is_up:
                        prober = self.server_by_node_id[node.node_id]
                        break
                if prober is not None:
                    prober.send(
                        MessageKind.TREE_MAINTENANCE,
                        supernode.node,
                        self.content.light_size_kb,
                    )
                node_id = supernode.node.node_id
                if supernode.node.is_up:
                    down_since.pop(node_id, None)
                    continue
                first_seen = down_since.setdefault(node_id, self.env.now)
                if self.env.now - first_seen >= failure_timeout_s:
                    down_since.pop(node_id, None)
                    self.handle_supernode_failure(supernode)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def handle_supernode_failure(self, failed: ServerActor) -> Optional[ServerActor]:
        """Recover a cluster whose supernode died.

        Section 5.2: "Newly-joined supernodes or supernodes having lost
        parents choose the nearest supernode that has fewer than k
        children as its parent."  Concretely:

        1. a member of the failed supernode's cluster is promoted to
           supernode (nearest member to the old supernode's location);
        2. the promotee joins the Push tree (tree ``repair`` re-attaches
           the dead node's tree children, the promotee attaches like a
           newly-joined supernode);
        3. the remaining members re-point their upstream at the promotee.

        Returns the promoted actor, or ``None`` if the cluster had no
        members left to promote (the cluster dissolves; its tree children
        are still re-attached).
        """
        index = None
        for i, supernode in enumerate(self.supernodes):
            if supernode is failed:
                index = i
                break
        if index is None:
            raise KeyError("%s is not a supernode" % failed.node.node_id)
        spec = self.clusters[index]

        # Re-attach the dead node's tree children first.
        self.tree.repair(failed)

        live_members = [
            self.server_by_node_id[node.node_id]
            for node in spec.members
            if node.is_up
        ]
        if not live_members:
            # Cluster dissolves: drop it from the bookkeeping.
            del self.supernodes[index]
            del self.clusters[index]
            return None

        promotee = min(
            live_members, key=lambda member: member.node.distance_km(failed.node)
        )

        # 1-2. Promote: swap in a Push policy and join the tree as a new
        # supernode (nearest attachable parent with a free slot).
        promotee.replace_policy(PushPolicy(forward=True))
        promotee.on_apply_hooks.append(promotee.notify_adaptive_members)
        self.tree.attach_new(promotee)
        self.supernodes[index] = promotee

        # 3. Remaining members follow the promotee; members sitting in
        # Invalidation mode re-register so the promotee knows to notify
        # them on the next update.
        remaining = [node for node in spec.members if node is not promotee.node]
        spec.supernode = promotee.node
        spec.members = remaining
        for node in remaining:
            member = self.server_by_node_id[node.node_id]
            member.upstream = promotee.node
            reannounce = getattr(member.policy, "reannounce", None)
            if reannounce is not None:
                reannounce()
        return promotee
