"""Cluster formation and supernode election for the hybrid infrastructure.

Section 5.2: content servers are grouped by geography using the Hilbert
curve of [39]/[44]; each cluster elects one *supernode* that is pushed
updates through a proximity-aware k-ary tree and serves the update
polling of the servers nearby.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..consistency.hilbert import DEFAULT_ORDER, cluster_by_hilbert
from ..network.node import NetworkNode
from ..sim.rng import RandomStream

__all__ = ["ClusterSpec", "form_clusters"]


@dataclass
class ClusterSpec:
    """One geographic cluster: its supernode plus ordinary members."""

    index: int
    supernode: NetworkNode
    members: List[NetworkNode] = field(default_factory=list)

    @property
    def all_nodes(self) -> List[NetworkNode]:
        return [self.supernode] + self.members

    @property
    def size(self) -> int:
        return 1 + len(self.members)


def form_clusters(
    server_nodes: Sequence[NetworkNode],
    n_clusters: int,
    stream: RandomStream,
    order: int = DEFAULT_ORDER,
) -> List[ClusterSpec]:
    """Partition *server_nodes* into proximity clusters and elect
    supernodes.

    The paper elects the supernode randomly within each cluster ("The
    supernode is randomly chosen from the node in the cluster").
    """
    if not server_nodes:
        raise ValueError("need at least one server node")
    groups = cluster_by_hilbert(
        server_nodes, n_clusters, key=lambda node: node.point, order=order
    )
    specs: List[ClusterSpec] = []
    for index, group in enumerate(groups):
        if not group:
            continue
        supernode = stream.choice(group)
        members = [node for node in group if node is not supernode]
        specs.append(ClusterSpec(index=index, supernode=supernode, members=members))
    return specs
