"""repro: reproduction of "Measuring and Evaluating Live Content
Consistency in a Large-Scale CDN" (Liu, Shen, Chandler, Li --
ICDCS 2014 / IEEE TPDS 2015).

The library provides, from scratch:

- :mod:`repro.sim` -- a deterministic discrete-event simulation engine;
- :mod:`repro.network` -- geography / ISP / latency / bandwidth substrate;
- :mod:`repro.cdn` -- origin, edge servers, DNS redirection, end users;
- :mod:`repro.consistency` -- TTL / Push / Invalidation / self-adaptive
  update methods on unicast / multicast-tree / broadcast infrastructures;
- :mod:`repro.core` -- HAT, the paper's hybrid self-adaptive proposal;
- :mod:`repro.trace` -- a generative model of the paper's CDN crawl and
  every Section 3 estimator (inconsistency lengths, TTL inference,
  tree-existence tests, cause breakdown);
- :mod:`repro.experiments` -- one driver per evaluation figure
  (Figs. 3-24) plus the paper-vs-measured report generator.

Quickstart::

    from repro.experiments import ci_scale, build_system

    metrics = build_system(ci_scale(server_ttl_s=60.0), "hat").run()
    print(metrics.mean_server_lag, metrics.response_messages)
"""

from . import cdn, consistency, core, experiments, metrics, network, sim, trace
from .core import HatConfig, HatSystem
from .experiments import (
    TestbedConfig,
    build_deployment,
    build_system,
    ci_scale,
    generate_report,
    paper_scale,
)
from .trace import SynthesisConfig, TraceSynthesizer, synthesize_trace

__version__ = "1.0.0"

__all__ = [
    "sim",
    "network",
    "cdn",
    "consistency",
    "core",
    "trace",
    "metrics",
    "experiments",
    "HatSystem",
    "HatConfig",
    "TestbedConfig",
    "build_deployment",
    "build_system",
    "ci_scale",
    "paper_scale",
    "generate_report",
    "SynthesisConfig",
    "TraceSynthesizer",
    "synthesize_trace",
    "__version__",
]
