"""Pluggable scenario registry (same entry shape as the method registry).

Every place that turns a scenario *name* into a :class:`Scenario` --
the ``repro scenario`` CLI, ``repro sweep --scenarios``, the testbed's
:func:`~repro.experiments.testbed.build_deployment` and the sweep
runner's :class:`~repro.runner.RunSpec` -- resolves through this one
table, exactly like :mod:`repro.consistency.registry` does for methods
and infrastructures.

The registry is open: call :func:`register_scenario` to plug in new
scenarios (experiments, downstream packages); the built-in library in
:mod:`repro.scenarios.library` registers itself on first resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .base import Scenario

__all__ = [
    "DEFAULT_SCENARIO",
    "ScenarioEntry",
    "SCENARIO_REGISTRY",
    "register_scenario",
    "scenario_names",
    "scenario_choices",
    "resolve_scenario",
]

#: The scenario every legacy entry point implies: the paper's exact
#: single-trace workload, no catalog, no perturbations.
DEFAULT_SCENARIO = "paper-baseline"


@dataclass(frozen=True)
class ScenarioEntry:
    """One scenario: canonical name, aliases, factory, metadata."""

    name: str
    #: Builds a fresh (stateless) :class:`Scenario` instance.
    factory: Callable[[], Scenario]
    aliases: Tuple[str, ...] = ()
    summary: str = ""
    tags: Tuple[str, ...] = ()


#: Canonical scenario table, populated by :func:`register_scenario`.
SCENARIO_REGISTRY: Dict[str, ScenarioEntry] = {}


def _ensure_builtins() -> None:
    """Import the built-in library (idempotent; avoids an import cycle:
    the library imports this module to register itself)."""
    from . import library  # noqa: F401  (import triggers registration)


def _alias_map() -> Dict[str, str]:
    mapping: Dict[str, str] = {}
    for entry in SCENARIO_REGISTRY.values():
        mapping[entry.name] = entry.name
        for alias in entry.aliases:
            mapping[alias] = entry.name
    return mapping


def register_scenario(entry: ScenarioEntry) -> ScenarioEntry:
    """Add *entry* to the registry; name/alias collisions fail loudly."""
    taken = _alias_map()
    for name in (entry.name,) + tuple(entry.aliases):
        if name in taken:
            raise ValueError(
                "scenario name %r already registered (by %r)" % (name, taken[name])
            )
    SCENARIO_REGISTRY[entry.name] = entry
    return entry


def scenario_names() -> Tuple[str, ...]:
    """The canonical scenario names, in registration order."""
    _ensure_builtins()
    return tuple(SCENARIO_REGISTRY)


def scenario_choices() -> Tuple[str, ...]:
    """Canonical names plus every alias (for CLI ``choices=``)."""
    _ensure_builtins()
    choices = list(SCENARIO_REGISTRY)
    for entry in SCENARIO_REGISTRY.values():
        choices.extend(entry.aliases)
    return tuple(choices)


def resolve_scenario(name) -> Scenario:
    """Look up a scenario by canonical name or alias.

    A :class:`Scenario` instance passes through unchanged (drivers can
    take ad-hoc scenario objects without registering them).
    """
    if isinstance(name, Scenario):
        return name
    _ensure_builtins()
    canonical = _alias_map().get(name)
    if canonical is None:
        raise ValueError(
            "unknown scenario %r (expected one of %s)"
            % (name, ", ".join(scenario_choices()))
        )
    return SCENARIO_REGISTRY[canonical].factory()
