"""The built-in scenario library (8 registered scenarios).

Every scenario derives its absolute times from the config it is asked
to expand for (fractions of ``game_duration_s``), so the same scenario
runs at smoke, CI and paper scale without re-tuning.  ``paper-baseline``
is special: it must reproduce the legacy hard-wired testbed bit for bit
(same workload parameters, same RNG stream, no perturbations) -- the
differential test in ``tests/test_scenarios.py`` pins this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..trace.workload import (
    AuctionWorkload,
    FlashSaleWorkload,
    LiveGameWorkload,
    PoissonWorkload,
)
from .base import SingleObjectScenario
from .catalog import CatalogScenario, CatalogSpec
from .perturbations import (
    DiurnalModulation,
    FailureStorm,
    FlashCrowd,
    Perturbation,
    Reconfiguration,
)
from .registry import ScenarioEntry, register_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import TestbedConfig

__all__ = ["BUILTIN_SCENARIOS"]


def _live_game(config: "TestbedConfig") -> LiveGameWorkload:
    """The legacy testbed workload, parameterised exactly as before."""
    return LiveGameWorkload(
        n_updates=config.n_updates, duration_s=config.game_duration_s
    )


# ----------------------------------------------------------------------
# scenario factories (one per registry entry)
# ----------------------------------------------------------------------
def _paper_baseline() -> SingleObjectScenario:
    return SingleObjectScenario(
        name="paper-baseline",
        summary="The paper's testbed: one live-game trace, no perturbations "
        "(bit-identical to the pre-scenario hard-wired path).",
        workload_factory=_live_game,
        tags=("baseline", "single-object"),
    )


def _flash_crowd() -> SingleObjectScenario:
    def perturbations(config: "TestbedConfig") -> Tuple[Perturbation, ...]:
        duration = config.game_duration_s
        return (
            FlashCrowd(
                start_s=config.update_start_s + 0.45 * duration,
                duration_s=0.2 * duration,
                poll_accel=4.0,
            ),
        )

    return SingleObjectScenario(
        name="flash-crowd",
        summary="Live game plus a mid-game flash crowd: every user polls "
        "4x faster for a fifth of the game.",
        workload_factory=_live_game,
        perturbation_factory=perturbations,
        tags=("single-object", "load-surge"),
    )


def _diurnal() -> SingleObjectScenario:
    def workload(config: "TestbedConfig") -> PoissonWorkload:
        return PoissonWorkload(
            rate_per_s=config.n_updates / config.game_duration_s,
            duration_s=config.game_duration_s,
        )

    def perturbations(config: "TestbedConfig") -> Tuple[Perturbation, ...]:
        duration = config.game_duration_s
        return (
            DiurnalModulation(
                period_s=duration / 2.0,
                step_s=duration / 40.0,
                amplitude=0.6,
            ),
        )

    return SingleObjectScenario(
        name="diurnal",
        summary="Memoryless Poisson updates with day/night polling cadence: "
        "user visit rates swing sinusoidally by +/-60%.",
        workload_factory=workload,
        perturbation_factory=perturbations,
        content_id="diurnal-feed",
        tags=("single-object", "load-shape"),
    )


def _failure_storm() -> SingleObjectScenario:
    def perturbations(config: "TestbedConfig") -> Tuple[Perturbation, ...]:
        duration = config.game_duration_s
        start = config.update_start_s
        return (
            FailureStorm(
                storms=(
                    (start + 0.3 * duration, 0.08 * duration),
                    (start + 0.7 * duration, 0.08 * duration),
                ),
                fraction=0.25,
            ),
        )

    return SingleObjectScenario(
        name="failure-storm",
        summary="Live game plus two correlated failure storms: a quarter of "
        "the servers (one contiguous block each time) goes dark mid-run.",
        workload_factory=_live_game,
        perturbation_factory=perturbations,
        tags=("single-object", "failures"),
    )


def _cdn_reconfig() -> SingleObjectScenario:
    def perturbations(config: "TestbedConfig") -> Tuple[Perturbation, ...]:
        duration = config.game_duration_s
        start = config.update_start_s
        return (
            Reconfiguration(
                event_times_s=(
                    start + duration / 3.0,
                    start + 2.0 * duration / 3.0,
                ),
                migrate_fraction=0.5,
            ),
        )

    return SingleObjectScenario(
        name="cdn-reconfig",
        summary="Live game plus two cache-cluster migrations (YouLighter): "
        "half the users are re-homed to different edge servers mid-run.",
        workload_factory=_live_game,
        perturbation_factory=perturbations,
        tags=("single-object", "reconfiguration"),
    )


def _zipf_catalog() -> CatalogScenario:
    return CatalogScenario(
        name="zipf-catalog",
        summary="Six-object Zipf(0.9) catalog with churn: staggered object "
        "births, popularity-scaled update volume and audiences.",
        spec=CatalogSpec(),
        tags=("catalog", "churn"),
    )


def _flash_sale() -> SingleObjectScenario:
    def workload(config: "TestbedConfig") -> FlashSaleWorkload:
        duration = config.game_duration_s
        sale_duration = 0.125 * duration
        multiplier = 20.0
        # Base rate chosen so the expected total update volume matches
        # config.n_updates: duration + (multiplier - 1) * sale_duration
        # effective seconds at the base rate.
        base_rate = config.n_updates / (
            duration + (multiplier - 1.0) * sale_duration
        )
        return FlashSaleWorkload(
            duration_s=duration,
            sale_start_s=0.5 * duration,
            sale_duration_s=sale_duration,
            base_rate_per_s=base_rate,
            sale_rate_multiplier=multiplier,
        )

    def perturbations(config: "TestbedConfig") -> Tuple[Perturbation, ...]:
        duration = config.game_duration_s
        return (
            FlashCrowd(
                start_s=config.update_start_s + 0.5 * duration,
                duration_s=0.125 * duration,
                poll_accel=5.0,
            ),
        )

    return SingleObjectScenario(
        name="flash-sale",
        summary="E-commerce inventory: 20x update rate during the sale "
        "window while shoppers refresh 5x faster.",
        workload_factory=workload,
        perturbation_factory=perturbations,
        content_id="flash-sale",
        tags=("single-object", "load-surge"),
    )


def _auction_sniping() -> SingleObjectScenario:
    def workload(config: "TestbedConfig") -> AuctionWorkload:
        duration = config.game_duration_s
        # Linear ramp whose integral matches config.n_updates in
        # expectation: (base + closing) / 2 * duration == n_updates.
        base_rate = 0.4 * config.n_updates / duration
        closing_rate = 1.6 * config.n_updates / duration
        return AuctionWorkload(
            duration_s=duration,
            base_rate_per_s=base_rate,
            closing_rate_per_s=closing_rate,
        )

    def perturbations(config: "TestbedConfig") -> Tuple[Perturbation, ...]:
        duration = config.game_duration_s
        return (
            FlashCrowd(
                start_s=config.update_start_s + 0.8 * duration,
                duration_s=0.2 * duration,
                poll_accel=5.0,
            ),
        )

    return SingleObjectScenario(
        name="auction-sniping",
        summary="Online auction: bid updates accelerate toward the close "
        "while bidders refresh 5x faster in the final stretch.",
        workload_factory=workload,
        perturbation_factory=perturbations,
        content_id="auction",
        tags=("single-object", "load-ramp"),
    )


#: The built-in entries, in presentation order.
BUILTIN_SCENARIOS: Tuple[ScenarioEntry, ...] = (
    ScenarioEntry(
        name="paper-baseline",
        factory=_paper_baseline,
        aliases=("baseline", "paper"),
        summary=_paper_baseline().summary,
        tags=("baseline", "single-object"),
    ),
    ScenarioEntry(
        name="flash-crowd",
        factory=_flash_crowd,
        summary=_flash_crowd().summary,
        tags=("single-object", "load-surge"),
    ),
    ScenarioEntry(
        name="diurnal",
        factory=_diurnal,
        summary=_diurnal().summary,
        tags=("single-object", "load-shape"),
    ),
    ScenarioEntry(
        name="failure-storm",
        factory=_failure_storm,
        aliases=("storm",),
        summary=_failure_storm().summary,
        tags=("single-object", "failures"),
    ),
    ScenarioEntry(
        name="cdn-reconfig",
        factory=_cdn_reconfig,
        aliases=("reconfig", "youlighter"),
        summary=_cdn_reconfig().summary,
        tags=("single-object", "reconfiguration"),
    ),
    ScenarioEntry(
        name="zipf-catalog",
        factory=_zipf_catalog,
        aliases=("catalog", "zipf"),
        summary=_zipf_catalog().summary,
        tags=("catalog", "churn"),
    ),
    ScenarioEntry(
        name="flash-sale",
        factory=_flash_sale,
        aliases=("sale",),
        summary=_flash_sale().summary,
        tags=("single-object", "load-surge"),
    ),
    ScenarioEntry(
        name="auction-sniping",
        factory=_auction_sniping,
        aliases=("auction",),
        summary=_auction_sniping().summary,
        tags=("single-object", "load-ramp"),
    ),
)

for _entry in BUILTIN_SCENARIOS:
    register_scenario(_entry)
