"""The Scenario protocol: workload + catalog + perturbations as one unit.

A :class:`Scenario` describes *everything about the simulated world that
is not a method or an infrastructure*: the update workload, the content
catalog it drives (one object for the paper's trace, many for
Zipf-popularity catalogs), and a schedule of mid-run perturbations
(flash crowds, diurnal load, failure storms, CDN reconfigurations).

A scenario expands, for a given :class:`TestbedConfig`, into one or
more :class:`ScenarioCell`\\ s.  Each cell is a single-object deployment
the existing testbed knows how to build and the existing
:class:`~repro.runner.Runner` knows how to execute, cache and
parallelise: the cell supplies the content object, per-cell config
overrides (e.g. the popularity-weighted share of the user population)
and the perturbations to install before the run starts.  Multi-object
catalogs are therefore *sharded by object*: each object simulates on
its own copy of the topology and the rollup re-weights the cells by
popularity (documented trade-off: objects do not contend for link
bandwidth across cells).

The ``paper-baseline`` scenario reproduces today's hard-wired
:class:`~repro.trace.workload.LiveGameWorkload` + single
:class:`~repro.cdn.content.LiveContent` path bit-identically: same
stream name, same workload parameters, no perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..cdn.content import LiveContent
from ..sim.rng import StreamRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import TestbedConfig
    from .perturbations import Perturbation

__all__ = [
    "UPDATE_STREAM",
    "PERTURBATION_STREAM",
    "ContentFactory",
    "ScenarioCell",
    "Scenario",
    "SingleObjectScenario",
    "content_from_workload",
]

#: Stream name the update schedule draws from.  This is the stream the
#: pre-scenario testbed used, so ``paper-baseline`` consumes randomness
#: identically to the legacy hard-wired path.
UPDATE_STREAM = "testbed.updates"

#: Stream name perturbations draw their build-time decisions from
#: (storm victims, migration plans).  Distinct from :data:`UPDATE_STREAM`
#: so installing a perturbation never perturbs the update schedule.
PERTURBATION_STREAM = "scenario.perturb"

#: Builds the cell's content object from the (already cell-adjusted)
#: config and the run's stream registry.
ContentFactory = Callable[["TestbedConfig", StreamRegistry], LiveContent]


@dataclass(frozen=True)
class ScenarioCell:
    """One runnable shard of a scenario (a single-object deployment).

    ``config_overrides`` are applied to the :class:`TestbedConfig`
    *before* the topology is built (so a cell can scale its user
    population to the object's popularity); ``weight`` is the cell's
    share in cross-cell rollups.
    """

    index: int
    label: str
    content_factory: ContentFactory
    weight: float = 1.0
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    perturbations: Tuple["Perturbation", ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("cell index must be >= 0")
        if not self.weight > 0:
            raise ValueError("cell weight must be positive")

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (CLI ``scenario describe``)."""
        return {
            "index": self.index,
            "label": self.label,
            "weight": self.weight,
            "config_overrides": dict(self.config_overrides),
            "perturbations": [p.describe() for p in self.perturbations],
        }


class Scenario:
    """Base class of every registered scenario.

    Subclasses define how many cells a config expands into and how to
    build each cell.  Scenarios are stateless: ``cell(config, i)`` must
    be a pure function of its arguments, because workers rebuild cells
    from ``(scenario name, cell index, config)`` when a
    :class:`~repro.runner.RunSpec` crosses a process boundary.
    """

    name: str = "base"
    summary: str = ""
    tags: Tuple[str, ...] = ()

    def n_cells(self, config: "TestbedConfig") -> int:
        return 1

    def cell(self, config: "TestbedConfig", index: int) -> ScenarioCell:
        raise NotImplementedError

    def cells(self, config: "TestbedConfig") -> List[ScenarioCell]:
        return [self.cell(config, i) for i in range(self.n_cells(config))]

    def describe(self, config: Optional["TestbedConfig"] = None) -> Dict[str, Any]:
        """JSON-safe description; cells are included when *config* given
        (cell expansion depends on the config's scale)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "summary": self.summary,
            "tags": list(self.tags),
        }
        if config is not None:
            expanded = self.cells(config)
            data["n_cells"] = len(expanded)
            data["cells"] = [cell.describe() for cell in expanded]
        return data


def content_from_workload(
    content_id: str,
    workload: Any,
    config: "TestbedConfig",
    streams: StreamRegistry,
) -> LiveContent:
    """Turn a workload's update times into a :class:`LiveContent`.

    Exactly the legacy testbed recipe: generate on :data:`UPDATE_STREAM`
    and shift by ``config.update_start_s``.
    """
    times = workload.generate(streams.stream(UPDATE_STREAM))
    return LiveContent(
        content_id,
        update_times=[config.update_start_s + t for t in times],
        update_size_kb=config.update_size_kb,
        light_size_kb=config.light_size_kb,
    )


class SingleObjectScenario(Scenario):
    """A one-object scenario: a workload factory plus perturbations.

    ``workload_factory(config)`` returns any object with a
    ``generate(stream) -> List[float]`` method (the classes in
    :mod:`repro.trace.workload` are the building blocks);
    ``perturbation_factory(config)`` returns the perturbations to
    install, already resolved to absolute simulation times.
    """

    def __init__(
        self,
        name: str,
        summary: str,
        workload_factory: Callable[["TestbedConfig"], Any],
        perturbation_factory: Optional[
            Callable[["TestbedConfig"], Tuple["Perturbation", ...]]
        ] = None,
        content_id: str = "live-game",
        tags: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.summary = summary
        self.tags = tuple(tags)
        self._workload_factory = workload_factory
        self._perturbation_factory = perturbation_factory
        self._content_id = content_id

    def workload(self, config: "TestbedConfig") -> Any:
        return self._workload_factory(config)

    def cell(self, config: "TestbedConfig", index: int) -> ScenarioCell:
        if index != 0:
            raise IndexError(
                "scenario %r has a single cell, not cell %d" % (self.name, index)
            )
        content_id = self._content_id

        def factory(cfg: "TestbedConfig", streams: StreamRegistry) -> LiveContent:
            return content_from_workload(
                content_id, self._workload_factory(cfg), cfg, streams
            )

        perturbations: Tuple["Perturbation", ...] = ()
        if self._perturbation_factory is not None:
            perturbations = tuple(self._perturbation_factory(config))
        return ScenarioCell(
            index=0,
            label=self.name,
            content_factory=factory,
            perturbations=perturbations,
        )
