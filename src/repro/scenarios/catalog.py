"""Multi-object content catalogs with Zipf popularity and churn.

The paper evaluates one content object; real CDNs serve catalogs whose
request popularity is Zipf-distributed and whose membership churns (the
nherbaut vCDN simulator drives exactly this shape: Zipf catalogs with
Poisson arrivals over a CDN hierarchy).  A :class:`CatalogScenario`
expands into one :class:`~repro.scenarios.base.ScenarioCell` per
object:

- object *i* carries Zipf weight ``w_i`` (exponent ``exponent``);
- its update volume scales with popularity
  (``~ n_updates * updates_scale * w_i``, floor 1);
- its audience scales with popularity: the cell's ``users_per_server``
  is ``~ users_per_server * n_objects * w_i`` (floor 1), so the total
  simulated audience across the catalog matches one baseline audience
  per object on average;
- churn staggers object lifetimes: object *i* is born at
  ``churn_stagger * duration * i / n`` and updates only during its
  ``lifetime_fraction`` window, after which it goes cold (users keep
  polling a frozen object -- the consistency-relevant half of churn).

Each object's update schedule draws from its own named stream
(``scenario.catalog.obj-XX``), so cells are independent of each other:
caching or re-running one cell can never perturb another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..cdn.content import LiveContent
from ..sim.rng import RandomStream, StreamRegistry
from .base import Scenario, ScenarioCell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import TestbedConfig
    from .perturbations import Perturbation

__all__ = ["CatalogSpec", "CatalogScenario", "zipf_weights"]


def zipf_weights(n: int, exponent: float) -> Tuple[float, ...]:
    """Normalised Zipf weights: ``w_i ~ 1 / (i + 1) ** exponent``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    raw = [1.0 / float(i + 1) ** exponent for i in range(n)]
    total = sum(raw)
    return tuple(w / total for w in raw)


@dataclass(frozen=True, kw_only=True)
class CatalogSpec:
    """Shape of a Zipf catalog (all knobs relative to the config scale)."""

    n_objects: int = 6
    #: Zipf popularity exponent (0 = uniform popularity).
    exponent: float = 0.9
    #: Fraction of the workload duration over which births stagger.
    churn_stagger: float = 0.5
    #: Object lifetime as a fraction of the workload duration.
    lifetime_fraction: float = 0.6
    #: Multiplier on ``config.n_updates`` for the whole catalog's volume.
    updates_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if self.exponent < 0:
            raise ValueError("exponent must be >= 0")
        if not 0.0 <= self.churn_stagger < 1.0:
            raise ValueError("churn_stagger must be in [0, 1)")
        if not 0.0 < self.lifetime_fraction <= 1.0:
            raise ValueError("lifetime_fraction must be in (0, 1]")
        if self.updates_scale <= 0:
            raise ValueError("updates_scale must be positive")


def _object_times(
    n_updates: int, start: float, end: float, stream: RandomStream
) -> List[float]:
    """Exactly ``n_updates`` jittered, sorted times in ``[start, end)``.

    Same exact-count recipe as
    :class:`~repro.trace.workload.LiveGameWorkload`: uniform slots with
    multiplicative jitter, so the volume is deterministic while the
    schedule stays irregular.
    """
    span = end - start
    slot = span / n_updates
    times = []
    for index in range(n_updates):
        base = (index + 0.5) * slot
        offset = stream.uniform(-0.45, 0.45) * slot
        times.append(start + min(span - 1e-9, max(0.0, base + offset)))
    times.sort()
    return times


class CatalogScenario(Scenario):
    """A Zipf-popularity multi-object catalog with churn (see module doc)."""

    def __init__(
        self,
        name: str,
        summary: str,
        spec: Optional[CatalogSpec] = None,
        perturbation_factory: Optional[
            Callable[["TestbedConfig"], Tuple["Perturbation", ...]]
        ] = None,
        tags: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.summary = summary
        self.tags = tuple(tags)
        self.spec = spec if spec is not None else CatalogSpec()
        self._perturbation_factory = perturbation_factory

    # ------------------------------------------------------------------
    def n_cells(self, config: "TestbedConfig") -> int:
        return self.spec.n_objects

    def weights(self) -> Tuple[float, ...]:
        return zipf_weights(self.spec.n_objects, self.spec.exponent)

    def lifetime(self, config: "TestbedConfig", index: int) -> Tuple[float, float]:
        """The ``(birth_s, retirement_s)`` window of object *index*
        (relative to the workload start)."""
        duration = config.game_duration_s
        birth = self.spec.churn_stagger * duration * index / self.spec.n_objects
        retirement = min(duration, birth + self.spec.lifetime_fraction * duration)
        return birth, retirement

    def cell(self, config: "TestbedConfig", index: int) -> ScenarioCell:
        if not 0 <= index < self.spec.n_objects:
            raise IndexError(
                "scenario %r has %d cells, not cell %d"
                % (self.name, self.spec.n_objects, index)
            )
        weight = self.weights()[index]
        label = "obj-%02d" % index
        birth, retirement = self.lifetime(config, index)
        n_updates = max(
            1, round(config.n_updates * self.spec.updates_scale * weight)
        )
        audience = 0
        if config.users_per_server > 0:
            audience = max(
                1, round(config.users_per_server * self.spec.n_objects * weight)
            )
        stream_name = "scenario.catalog.%s" % label

        def factory(cfg: "TestbedConfig", streams: StreamRegistry) -> LiveContent:
            times = _object_times(
                n_updates, birth, retirement, streams.stream(stream_name)
            )
            return LiveContent(
                "catalog-%s" % label,
                update_times=[cfg.update_start_s + t for t in times],
                update_size_kb=cfg.update_size_kb,
                light_size_kb=cfg.light_size_kb,
            )

        perturbations: Tuple["Perturbation", ...] = ()
        if self._perturbation_factory is not None:
            perturbations = tuple(self._perturbation_factory(config))
        return ScenarioCell(
            index=index,
            label=label,
            content_factory=factory,
            weight=weight,
            config_overrides={"users_per_server": audience},
            perturbations=perturbations,
        )

    def describe(self, config: Optional["TestbedConfig"] = None) -> Dict[str, Any]:
        data = super().describe(config)
        data["catalog"] = {
            "n_objects": self.spec.n_objects,
            "exponent": self.spec.exponent,
            "churn_stagger": self.spec.churn_stagger,
            "lifetime_fraction": self.spec.lifetime_fraction,
            "updates_scale": self.spec.updates_scale,
        }
        return data
