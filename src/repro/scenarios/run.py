"""Run scenarios through the Runner and roll the cells up.

:func:`run_scenario` expands a scenario into its cells, executes every
cell as a :class:`~repro.runner.RunSpec` (parallelised and memoized by
whatever :class:`~repro.runner.Runner` is supplied) and returns one
:class:`~repro.experiments.result.FigureResult` with per-cell series,
popularity-weighted rollups and the producing sweep's
:class:`~repro.runner.RunStats` (including its telemetry rollup).

:func:`compare_scenarios` is the Section-5-style cross-scenario figure:
one method/infrastructure evaluated under every named scenario, with
the scenarios ranked by the consistency they allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..experiments.config import TestbedConfig
from ..experiments.result import FigureResult
from ..experiments.testbed import DeploymentMetrics
from ..obs.telemetry import TELEMETRY, profiled
from ..runner import Runner, RunSpec, run_specs
from .base import ScenarioCell
from .registry import resolve_scenario

__all__ = [
    "ScenarioOutcome",
    "scenario_specs",
    "run_scenario",
    "compare_scenarios",
]


@dataclass
class ScenarioOutcome:
    """Per-cell metrics of one scenario run plus weighted rollups.

    Lag/staleness rollups weight each cell by its popularity weight
    (catalog objects contribute proportionally to their audience);
    traffic and message rollups sum over cells (the catalog's total
    footprint is the union of its objects' footprints).
    """

    scenario: str
    method: str
    infrastructure: str
    kind: str
    cells: List[ScenarioCell]
    metrics: List[DeploymentMetrics]

    def __post_init__(self) -> None:
        if len(self.cells) != len(self.metrics):
            raise ValueError("cells and metrics must align")
        if not self.cells:
            raise ValueError("a scenario outcome needs at least one cell")

    # ------------------------------------------------------------------
    @property
    def cell_labels(self) -> List[str]:
        return [cell.label for cell in self.cells]

    def _weighted(self, values: List[float]) -> float:
        total = sum(cell.weight for cell in self.cells)
        if total <= 0.0:
            # An all-zero-weight catalog carries no audience: its rollup
            # is 0.0 rather than a ZeroDivisionError.  (An empty cell
            # list is already rejected in __post_init__.)
            return 0.0
        return sum(
            cell.weight * value for cell, value in zip(self.cells, values)
        ) / total

    @property
    def mean_server_lag(self) -> float:
        return self._weighted([m.mean_server_lag for m in self.metrics])

    @property
    def mean_user_lag(self) -> float:
        return self._weighted([m.mean_user_lag for m in self.metrics])

    @property
    def mean_stale_fraction(self) -> float:
        return self._weighted([m.mean_stale_fraction for m in self.metrics])

    @property
    def cost_km_kb(self) -> float:
        return sum(m.cost_km_kb for m in self.metrics)

    @property
    def update_messages(self) -> int:
        return sum(m.update_messages for m in self.metrics)

    @property
    def light_messages(self) -> int:
        return sum(m.light_messages for m in self.metrics)

    @property
    def dropped_messages(self) -> int:
        return sum(m.dropped_messages for m in self.metrics)

    @property
    def node_downtime_s(self) -> float:
        return sum(m.node_downtime_s for m in self.metrics)

    @property
    def events_processed(self) -> int:
        return sum(m.events_processed for m in self.metrics)

    def cell_summary(self, index: int) -> Dict[str, Any]:
        """One cell's plottable numbers (per-scenario series entry)."""
        cell, metrics = self.cells[index], self.metrics[index]
        return {
            "weight": cell.weight,
            "mean_server_lag": metrics.mean_server_lag,
            "mean_user_lag": metrics.mean_user_lag,
            "mean_stale_fraction": metrics.mean_stale_fraction,
            "cost_km_kb": metrics.cost_km_kb,
            "update_messages": metrics.update_messages,
            "light_messages": metrics.light_messages,
            "dropped_messages": metrics.dropped_messages,
            "node_downtime_s": metrics.node_downtime_s,
        }

    def rollup(self) -> Dict[str, Any]:
        """The headline scalars (weighted means + summed totals)."""
        return {
            "mean_server_lag": self.mean_server_lag,
            "mean_user_lag": self.mean_user_lag,
            "mean_stale_fraction": self.mean_stale_fraction,
            "cost_km_kb": self.cost_km_kb,
            "update_messages": self.update_messages,
            "light_messages": self.light_messages,
            "dropped_messages": self.dropped_messages,
            "node_downtime_s": self.node_downtime_s,
            "events_processed": self.events_processed,
            "n_cells": len(self.cells),
        }


def scenario_specs(
    scenario,
    config: TestbedConfig,
    method: str,
    infrastructure: str = "unicast",
    kind: str = "deployment",
) -> List[RunSpec]:
    """One :class:`RunSpec` per cell of *scenario* (registry-resolved)."""
    resolved = resolve_scenario(scenario)
    return [
        RunSpec(
            config=config,
            method=method,
            infrastructure=infrastructure,
            kind=kind,
            scenario=resolved.name,
            scenario_cell=index,
        )
        for index in range(resolved.n_cells(config))
    ]


@profiled("driver.scenario")
def run_scenario(
    scenario,
    config: TestbedConfig,
    method: str = "ttl",
    infrastructure: str = "unicast",
    kind: str = "deployment",
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Run every cell of *scenario* and roll the metrics up (see module
    docstring)."""
    resolved = resolve_scenario(scenario)
    cells = resolved.cells(config)
    specs = scenario_specs(resolved, config, method, infrastructure, kind)
    outcome = run_specs(specs, runner)
    TELEMETRY.count("scenario.cells_run", len(cells))
    details = ScenarioOutcome(
        scenario=resolved.name,
        method=method,
        infrastructure=infrastructure,
        kind=kind,
        cells=cells,
        metrics=list(outcome.metrics),
    )
    return FigureResult(
        name="scenario:%s" % resolved.name,
        params={
            "scenario": resolved.name,
            "method": method,
            "infrastructure": infrastructure,
            "kind": kind,
            "seed": config.seed,
        },
        series={
            "cells": {
                cell.label: details.cell_summary(index)
                for index, cell in enumerate(cells)
            }
        },
        summary=details.rollup(),
        details=details,
        stats=outcome.stats,
    )


@profiled("driver.scenario_comparison")
def compare_scenarios(
    scenarios: Sequence[Any],
    config: TestbedConfig,
    method: str = "ttl",
    infrastructure: str = "unicast",
    kind: str = "deployment",
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Section-5-style comparison: one method under every scenario.

    All cells of all scenarios go through one runner batch, so a shared
    registry caches across scenarios and a process pool overlaps them.
    """
    resolved = [resolve_scenario(s) for s in scenarios]
    if not resolved:
        raise ValueError("need at least one scenario to compare")
    per_scenario_specs = [
        scenario_specs(s, config, method, infrastructure, kind) for s in resolved
    ]
    flat = [spec for specs in per_scenario_specs for spec in specs]
    batch = run_specs(flat, runner)
    outcomes: Dict[str, ScenarioOutcome] = {}
    cursor = 0
    for s, specs in zip(resolved, per_scenario_specs):
        metrics = batch.metrics[cursor : cursor + len(specs)]
        cursor += len(specs)
        outcomes[s.name] = ScenarioOutcome(
            scenario=s.name,
            method=method,
            infrastructure=infrastructure,
            kind=kind,
            cells=s.cells(config),
            metrics=list(metrics),
        )
    ordering = sorted(
        outcomes, key=lambda name: outcomes[name].mean_user_lag
    )
    return FigureResult(
        name="scenario-comparison",
        params={
            "scenarios": [s.name for s in resolved],
            "method": method,
            "infrastructure": infrastructure,
            "kind": kind,
            "seed": config.seed,
        },
        series={name: outcomes[name].rollup() for name in outcomes},
        summary={
            "user_lag_ordering": ordering,
            "worst_scenario": ordering[-1],
            "best_scenario": ordering[0],
        },
        details=outcomes,
        stats=batch.stats,
    )
