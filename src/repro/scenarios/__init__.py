"""Pluggable workload scenarios for the consistency testbed.

A :class:`Scenario` bundles what the legacy testbed hard-wired: the
arrival workload, the content catalog and a schedule of mid-run
perturbations.  Scenarios resolve by name through a registry shaped
like :mod:`repro.consistency.registry`, expand into per-object
:class:`ScenarioCell` deployments, and run through the standard
:class:`~repro.runner.Runner` machinery (see :mod:`repro.scenarios.run`).
"""

from .base import (
    PERTURBATION_STREAM,
    UPDATE_STREAM,
    Scenario,
    ScenarioCell,
    SingleObjectScenario,
    content_from_workload,
)
from .catalog import CatalogScenario, CatalogSpec, zipf_weights
from .perturbations import (
    DiurnalModulation,
    FailureStorm,
    FlashCrowd,
    Perturbation,
    Reconfiguration,
)
from .registry import (
    DEFAULT_SCENARIO,
    SCENARIO_REGISTRY,
    ScenarioEntry,
    register_scenario,
    resolve_scenario,
    scenario_choices,
    scenario_names,
)
from .run import ScenarioOutcome, compare_scenarios, run_scenario, scenario_specs

__all__ = [
    "PERTURBATION_STREAM",
    "UPDATE_STREAM",
    "Scenario",
    "ScenarioCell",
    "SingleObjectScenario",
    "content_from_workload",
    "CatalogScenario",
    "CatalogSpec",
    "zipf_weights",
    "Perturbation",
    "FlashCrowd",
    "DiurnalModulation",
    "FailureStorm",
    "Reconfiguration",
    "DEFAULT_SCENARIO",
    "SCENARIO_REGISTRY",
    "ScenarioEntry",
    "register_scenario",
    "resolve_scenario",
    "scenario_choices",
    "scenario_names",
    "ScenarioOutcome",
    "scenario_specs",
    "run_scenario",
    "compare_scenarios",
]
