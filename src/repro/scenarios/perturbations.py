"""Mid-run perturbations: in-flight changes to a running deployment.

A :class:`Perturbation` is installed on a wired-but-not-yet-run
:class:`~repro.experiments.testbed.Deployment`.  Installation may draw
from the scenario's perturbation stream (victim selection, migration
plans) but every random decision happens at *install* time, so the
event-loop side of a perturbation is pure: replaying the same spec
yields the same storm victims, the same migration plan, the same surge
windows, bit for bit.

Four families, mirroring the phenomena the measurement literature
reports for live-content CDNs:

- :class:`FlashCrowd` -- users poll faster during a window (breaking
  news, a goal in the live game);
- :class:`DiurnalModulation` -- sinusoidal day/night polling cadence;
- :class:`FailureStorm` -- correlated outages of a contiguous server
  block (rack / region failure, Section 3.4.5's absences);
- :class:`Reconfiguration` -- a cache-cluster migration mid-run
  (YouLighter's observed cluster churn): a slice of the user population
  is re-homed to different edge servers at each event time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, List, Tuple

from ..cdn.client import EndUserActor, FixedSelector
from ..cdn.server import schedule_absence
from ..network.node import NetworkNode
from ..sim.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.testbed import Deployment

__all__ = [
    "Perturbation",
    "FlashCrowd",
    "DiurnalModulation",
    "FailureStorm",
    "Reconfiguration",
]


class Perturbation:
    """Base class: a named, installable mid-run event."""

    kind: ClassVar[str] = "base"

    def describe(self) -> str:
        """One-line human/JSON summary (CLI ``scenario describe``)."""
        return self.kind

    def install(self, deployment: "Deployment", stream: RandomStream) -> None:
        """Attach this perturbation's processes to the deployment."""
        raise NotImplementedError


@dataclass(frozen=True, kw_only=True)
class FlashCrowd(Perturbation):
    """Every user polls ``poll_accel``x faster during the surge window."""

    kind: ClassVar[str] = "flash-crowd"

    start_s: float
    duration_s: float
    poll_accel: float = 4.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.poll_accel < 1.0:
            raise ValueError("poll_accel must be >= 1")

    def describe(self) -> str:
        return "%s[%g..%gs x%g]" % (
            self.kind, self.start_s, self.start_s + self.duration_s, self.poll_accel,
        )

    def install(self, deployment: "Deployment", stream: RandomStream) -> None:
        env = deployment.env
        users = list(deployment.users)

        def surge():
            if self.start_s > 0:
                yield env.pooled_timeout(self.start_s)
            for user in users:
                user.user_ttl_s = user.user_ttl_s / self.poll_accel
            yield env.pooled_timeout(self.duration_s)
            for user in users:
                user.user_ttl_s = user.user_ttl_s * self.poll_accel

        env.process(surge())


@dataclass(frozen=True, kw_only=True)
class DiurnalModulation(Perturbation):
    """Sinusoidal polling cadence: visit rate swings by ``amplitude``.

    The activity factor at simulated time *t* is
    ``1 + amplitude * sin(2 pi t / period_s)``; each user's poll TTL is
    its base TTL divided by that factor, re-evaluated every ``step_s``.
    """

    kind: ClassVar[str] = "diurnal"

    period_s: float
    step_s: float
    amplitude: float = 0.6

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.step_s <= 0:
            raise ValueError("period_s and step_s must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def describe(self) -> str:
        return "%s[period=%gs amp=%g]" % (self.kind, self.period_s, self.amplitude)

    def install(self, deployment: "Deployment", stream: RandomStream) -> None:
        env = deployment.env
        users = list(deployment.users)
        base_ttls = [user.user_ttl_s for user in users]

        def modulate():
            while True:
                factor = 1.0 + self.amplitude * math.sin(
                    2.0 * math.pi * env.now / self.period_s
                )
                for user, base in zip(users, base_ttls):
                    user.user_ttl_s = base / factor
                yield env.pooled_timeout(self.step_s)

        env.process(modulate())


@dataclass(frozen=True, kw_only=True)
class FailureStorm(Perturbation):
    """Correlated outages: a contiguous block of servers goes down.

    For each ``(start_s, outage_s)`` storm, a contiguous run of
    ``fraction`` of the servers (random offset, wrapping) is taken down
    via :func:`~repro.cdn.server.schedule_absence`.  Contiguity models
    the rack/region correlation real storms show; the offset is the only
    random draw, so storms are cheap to reason about and to replay.
    """

    kind: ClassVar[str] = "failure-storm"

    storms: Tuple[Tuple[float, float], ...]
    fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.storms:
            raise ValueError("need at least one (start_s, outage_s) storm")
        for start, outage in self.storms:
            if start < 0 or outage <= 0:
                raise ValueError(
                    "storm (%r, %r): start must be >= 0, outage positive"
                    % (start, outage)
                )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    def describe(self) -> str:
        windows = ", ".join(
            "%g+%gs" % (start, outage) for start, outage in self.storms
        )
        return "%s[%s; %g of servers]" % (self.kind, windows, self.fraction)

    def install(self, deployment: "Deployment", stream: RandomStream) -> None:
        nodes = [server.node for server in deployment.servers]
        if not nodes:
            return
        k = min(len(nodes), max(1, round(len(nodes) * self.fraction)))
        for start, outage in self.storms:
            offset = stream.randint(0, len(nodes) - 1)
            for j in range(k):
                schedule_absence(
                    deployment.env, nodes[(offset + j) % len(nodes)], start, outage
                )


@dataclass(frozen=True, kw_only=True)
class Reconfiguration(Perturbation):
    """Cache-cluster migration: users are re-homed to new servers.

    At each event time, ``migrate_fraction`` of the fixed-home users are
    reassigned to a randomly chosen server (YouLighter observes exactly
    such cluster migrations in a production CDN).  The migration plan --
    who moves where, at which event -- is drawn entirely at install
    time; the run-time process only applies it.
    """

    kind: ClassVar[str] = "reconfiguration"

    event_times_s: Tuple[float, ...]
    migrate_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.event_times_s:
            raise ValueError("need at least one event time")
        if any(t < 0 for t in self.event_times_s):
            raise ValueError("event times must be >= 0")
        if not 0.0 < self.migrate_fraction <= 1.0:
            raise ValueError("migrate_fraction must be in (0, 1]")

    def describe(self) -> str:
        times = ", ".join("%gs" % t for t in self.event_times_s)
        return "%s[at %s; %g of users]" % (self.kind, times, self.migrate_fraction)

    def install(self, deployment: "Deployment", stream: RandomStream) -> None:
        env = deployment.env
        users = [
            user
            for user in deployment.users
            if isinstance(user.selector, FixedSelector)
        ]
        server_nodes = [server.node for server in deployment.servers]
        if not users or len(server_nodes) < 2:
            return
        k = max(1, round(len(users) * self.migrate_fraction))

        def migrate(moves: List[Tuple[EndUserActor, NetworkNode]], when: float):
            if when > 0:
                yield env.pooled_timeout(when)
            for user, node in moves:
                user.selector.server = node

        for when in self.event_times_s:
            movers = stream.sample(users, min(k, len(users)))
            moves = [(user, stream.choice(server_nodes)) for user in movers]
            env.process(migrate(moves, when))
