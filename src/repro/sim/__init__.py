"""Discrete-event simulation substrate.

A deterministic, generator-based simulation kernel in the style of simpy,
built from scratch because no third-party DES library is available in the
reproduction environment.  See :mod:`repro.sim.engine` for the core loop.
"""

from .engine import (
    EmptySchedule,
    Environment,
    Event,
    NORMAL,
    SimulationError,
    StopSimulation,
    Timeout,
    URGENT,
)
from .process import AllOf, AnyOf, Condition, ConditionValue, Interrupt, Process
from .resources import PriorityItem, PriorityStore, Release, Request, Resource, Store
from .rng import RandomStream, StreamRegistry, derive_seed
from .simtime import TIME_EPS_S, is_zero_duration, times_close, times_equal

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Release",
    "Store",
    "PriorityStore",
    "PriorityItem",
    "RandomStream",
    "StreamRegistry",
    "derive_seed",
    "TIME_EPS_S",
    "times_equal",
    "times_close",
    "is_zero_duration",
    "SimulationError",
    "EmptySchedule",
    "StopSimulation",
    "NORMAL",
    "URGENT",
]
