"""Named, seeded random streams.

Every stochastic decision in the library draws from a :class:`RandomStream`
obtained from a :class:`StreamRegistry`.  Each stream's seed is derived
deterministically from ``(master_seed, stream_name)``, so

- two runs with the same master seed are bit-for-bit identical, and
- adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one global ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Sequence, TypeVar

__all__ = ["RandomStream", "StreamRegistry", "derive_seed"]

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, name)``.

    Uses BLAKE2b, so distinct names give statistically independent seeds.
    """
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        key=str(int(master_seed)).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


class RandomStream:
    """A named pseudo-random stream (thin wrapper over ``random.Random``)."""

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self.seed = seed
        self._rng = random.Random(seed)

    def __repr__(self) -> str:
        return "RandomStream(name=%r, seed=%d)" % (self.name, self.seed)

    # Delegated primitives -- explicit rather than __getattr__ so the
    # public surface is greppable and tooling-friendly.
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def paretovariate(self, alpha: float) -> float:
        return self._rng.paretovariate(alpha)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(population, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def choices(self, population: Sequence[T], weights=None, k: int = 1) -> List[T]:
        return self._rng.choices(population, weights=weights, k=k)

    def jitter(self, base: float, fraction: float) -> float:
        """``base`` perturbed uniformly by up to ``+/- fraction * base``."""
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        return base * (1.0 + self._rng.uniform(-fraction, fraction))

    def bernoulli(self, p: float) -> bool:
        """``True`` with probability *p*."""
        return self._rng.random() < p


class StreamRegistry:
    """Factory and cache of :class:`RandomStream` objects for one run."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for *name*, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = RandomStream(name, derive_seed(self.master_seed, name))
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> Iterator[str]:
        return iter(sorted(self._streams))
