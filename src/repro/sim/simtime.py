"""Tolerance helpers for comparing simulated-time floats.

Simulated timestamps are accumulated floats (``env.now`` advances by
summed delays), so exact ``==`` / ``!=`` is representation-dependent:
two logically simultaneous instants can disagree in the last ulp
depending on how the intermediate sums were ordered.  Rule REP004
(:mod:`repro.lint`) therefore bans exact equality on time-like values;
these helpers are the sanctioned replacement.

``TIME_EPS_S`` (1 ns of simulated time) is far below every delay the
models produce (the shortest is the 4 ms base path latency) and far
above double-precision noise at realistic horizons (an 8760 s run has
ulp ~1e-12 s), so it cleanly separates "the same instant" from "one
event later".
"""

from __future__ import annotations

__all__ = ["TIME_EPS_S", "times_equal", "times_close", "is_zero_duration"]

#: Default absolute tolerance for simulated-time comparison, seconds.
TIME_EPS_S = 1e-9


def times_equal(a: float, b: float, tol_s: float = TIME_EPS_S) -> bool:
    """``True`` when two simulated instants differ by at most *tol_s*."""
    return abs(a - b) <= tol_s


def times_close(a: float, b: float, rel: float = 1e-9, tol_s: float = TIME_EPS_S) -> bool:
    """Like :func:`times_equal` with an extra relative term for
    far-future horizons (``|a - b| <= tol_s + rel * max(|a|, |b|)``)."""
    return abs(a - b) <= tol_s + rel * max(abs(a), abs(b))


def is_zero_duration(duration_s: float, tol_s: float = TIME_EPS_S) -> bool:
    """``True`` when an accumulated duration is indistinguishable from 0."""
    return abs(duration_s) <= tol_s
