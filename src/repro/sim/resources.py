"""Shared resources for the simulation engine.

- :class:`Resource` -- a capacity-limited resource with a FIFO wait queue
  (models e.g. a node's output network port: transmissions serialise).
- :class:`Store` -- an unbounded-or-bounded FIFO of Python objects
  (models message queues between actors).
- :class:`PriorityStore` -- a store that yields the smallest item first.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List

from .engine import Environment, Event

__all__ = ["Resource", "Request", "Release", "Store", "PriorityStore", "PriorityItem"]


class Request(Event):
    """Event fired once the resource has granted the request.

    Usable as a context manager so the resource is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Release(Event):
    """Event fired once the resource has processed a release."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)


class Resource:
    """A resource with ``capacity`` usage slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0, got %r" % (capacity,))
        self.env = env
        self._capacity = capacity
        #: Granted requests -- or opaque fast-claim tokens (`try_claim`).
        self.users: List[Any] = []
        self._queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of waiting (ungranted) requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Request a usage slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a previously granted *request*."""
        return Release(self, request)

    # -- fast path (callback-driven transport) -------------------------
    def try_claim(self, token: Any) -> bool:
        """Claim a slot synchronously when the resource is uncontended.

        Skips the :class:`Request` event entirely: no grant event is
        scheduled, *token* (any object) marks the occupied slot in
        ``users``.  Fails -- returning ``False`` -- whenever a slot is
        taken or anyone is waiting, so fast claims can never overtake
        the FIFO queue.  Pair with :meth:`release_fast`.
        """
        if self._queue or len(self.users) >= self._capacity:
            return False
        self.users.append(token)
        return True

    def release_fast(self, token: Any) -> None:
        """Release a slot held by *token* (a fast claim or a granted
        :class:`Request`) without materialising a :class:`Release`
        event; waiters are granted exactly as in :meth:`release`."""
        try:
            self.users.remove(token)
        except ValueError:  # pragma: no cover - defensive, mirrors release
            pass
        self._grant_waiters()

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self._queue.append(request)

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            release.request.cancel()
        self._grant_waiters()
        release.succeed()

    def _grant_waiters(self) -> None:
        while self._queue and len(self.users) < self._capacity:
            request = self._queue.popleft()
            self.users.append(request)
            request.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO store of arbitrary items with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0, got %r" % (capacity,))
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Put *item* into the store; fires once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Get the next item; fires once an item is available."""
        return StoreGet(self)

    # -- internals -----------------------------------------------------
    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self) -> Any:
        return self.items.pop(0)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self._capacity:
                put = self._put_queue.popleft()
                self._store_item(put.item)
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self._take_item())
                progressed = True


class PriorityItem:
    """Wrap an unorderable item with an orderable priority key."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:
        return "PriorityItem(%r, %r)" % (self.priority, self.item)


class PriorityStore(Store):
    """A store that always yields its smallest item first."""

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _take_item(self) -> Any:
        return heapq.heappop(self.items)
