"""Core of the discrete-event simulation engine.

The engine is a small, deterministic, generator-based kernel in the style
of simpy (which is not available in this offline environment).  It provides:

- :class:`Environment` -- the event loop, simulation clock and scheduler.
- :class:`Event` -- the basic synchronisation primitive.
- :class:`Timeout` -- an event that fires after a simulated delay.

Determinism: events scheduled for the same simulated time are ordered by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing counter, so two runs of the same model with the same seeds
produce identical event orderings.
"""

from __future__ import annotations

import heapq
import os
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .process import Process
    from .timers import TimerWheel

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "SimulationError",
    "EmptySchedule",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "LEGACY_KERNEL_ENV",
]

#: Environment variable selecting the legacy per-event kernel paths
#: (per-process timeout churn, inbox-store dispatch, per-collection
#: staleness scans).  Read once at :class:`Environment` construction --
#: never at import time -- so tests can flip it with
#: ``monkeypatch.setenv`` (same contract as ``REPRO_LEGACY_TRANSPORT``).
LEGACY_KERNEL_ENV = "REPRO_LEGACY_KERNEL"

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Scheduling priority for events that must run before ordinary events
#: scheduled at the same time (used internally for process resumption).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no more events exist."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event."""

    @classmethod
    def callback(cls, event: "Event") -> None:
        """Event callback that stops the simulation when *event* fires."""
        if event.ok:
            raise cls(event.value)
        raise event.value  # pragma: no cover - defensive re-raise


# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """An event that may happen at some point in simulated time.

    An event has three observable states:

    - *untriggered*: not yet scheduled; ``triggered`` is ``False``.
    - *triggered*: scheduled with a value; ``triggered`` is ``True``.
    - *processed*: its callbacks have run; ``processed`` is ``True``.

    Processes wait for events by ``yield``-ing them.  Multiple processes
    may wait on the same event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks ``f(event)`` executed when the event is processed.
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        return "<%s object at 0x%x>" % (type(self).__name__, id(self))

    @property
    def triggered(self) -> bool:
        """``True`` if the event has been scheduled (has a value)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` if the event's callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (valid once triggered)."""
        if not self.triggered:
            raise AttributeError("value of %r is not yet available" % self)
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (valid once triggered)."""
        if self._value is _PENDING:
            raise AttributeError("value of %r is not yet available" % self)
        return self._value

    @property
    def defused(self) -> bool:
        """``True`` if a failed event's exception has been handled."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another *event*.

        Used as a callback to chain events together.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event as successful with an optional *value*."""
        if self.triggered:
            raise RuntimeError("%r has already been triggered" % self)
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event as failed with *exception* as its value."""
        if self.triggered:
            raise RuntimeError("%r has already been triggered" % self)
        if not isinstance(exception, BaseException):
            raise ValueError("%r is not an exception" % (exception,))
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __and__(self, other: "Event") -> "Event":
        from .process import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from .process import AnyOf

        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError("negative delay %s" % delay)
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return "<Timeout(%s) object at 0x%x>" % (self._delay, id(self))


class _PooledTimeout(Timeout):
    """A :class:`Timeout` recycled through ``Environment._timeout_pool``.

    Only ever created by :meth:`Environment.pooled_timeout`; the event
    loop returns processed instances to the pool, so the caller must not
    retain one past its firing (see ``pooled_timeout`` for the contract).
    """

    __slots__ = ()


#: One scheduled entry in the event heap: ``(time, priority, seq, event)``.
_QueueEntry = Tuple[float, int, int, Event]


class Environment:
    """Execution environment: simulation clock plus the event queue.

    ``tracer`` is the observability hook (see :mod:`repro.obs.tracer`):
    instrumented call sites throughout the stack guard on
    ``env.tracer.enabled``, so the default no-op tracer costs one
    attribute read and a branch per instrumented site.  Tracers never
    schedule events or touch RNG state, so attaching one cannot change
    any simulated outcome.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_events_processed",
        "_active_proc",
        "_timeout_pool",
        "tracer",
        "legacy_kernel",
        "timers",
        "sanitizer",
        "progress",
    )

    #: Events between two progress-hook invocations (power of two: the
    #: instrumented loop tests ``processed & MASK == 0``).
    PROGRESS_STRIDE = 4096

    def __init__(
        self,
        initial_time: float = 0.0,
        tracer: Optional[Any] = None,
        legacy_kernel: Optional[bool] = None,
        sanitizer: Optional[Any] = None,
    ) -> None:
        from ..obs.tracer import NULL_TRACER
        from .sanitize import sanitizer_from_env
        from .timers import TimerWheel

        self._now = float(initial_time)
        self._queue: List[_QueueEntry] = []
        self._eid = 0
        self._events_processed = 0
        self._active_proc: Optional["Process"] = None
        self._timeout_pool: List[_PooledTimeout] = []
        #: Observability hook; NULL_TRACER (a shared no-op) by default.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if legacy_kernel is None:
            legacy_kernel = os.environ.get(LEGACY_KERNEL_ENV, "") not in ("", "0")
        #: ``True`` selects the legacy per-event hot paths throughout the
        #: stack (see :data:`LEGACY_KERNEL_ENV`); fixed at construction.
        self.legacy_kernel = bool(legacy_kernel)
        #: Schedule sanitizer (see :mod:`repro.sim.sanitize`); ``None``
        #: outside sanitize runs, fixed at construction like the kernel
        #: switch.  Every push site -- including the inlined ones in
        #: ``run`` and the fast transport -- must honor it.
        self.sanitizer = (
            sanitizer if sanitizer is not None else sanitizer_from_env()
        )
        #: Optional live-progress hook ``f(sim_time, events_processed)``
        #: (see :mod:`repro.obs.live`).  ``None`` keeps the hot loop
        #: untouched; when set, ``run()`` invokes it every
        #: :data:`PROGRESS_STRIDE` processed events.  Hooks are purely
        #: observational: they must never schedule events or draw RNG.
        self.progress: Optional[Callable[[float, int], None]] = None
        #: Vectorized expiry sweeps for hot-path timers (fast kernel).
        self.timers: "TimerWheel" = TimerWheel(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently being resumed (or ``None``)."""
        return self._active_proc

    @property
    def events_processed(self) -> int:
        """Number of events this environment has processed so far."""
        return self._events_processed

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    # ------------------------------------------------------------------
    # scheduling / stepping
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = NORMAL,
        delay: float = 0.0,
        _push: Callable[[List[_QueueEntry], _QueueEntry], None] = _heappush,
    ) -> None:
        """Schedule *event* ``delay`` time units into the future."""
        self._eid += 1
        sanitizer = self.sanitizer
        if sanitizer is None:
            _push(self._queue, (self._now + delay, priority, self._eid, event))
        else:
            at = self._now + delay
            _push(
                self._queue,
                (at, priority, sanitizer.tie_key(at, priority, self._eid), event),
            )

    def schedule_at(
        self,
        event: Event,
        at: float,
        priority: int = NORMAL,
        _push: Callable[[List[_QueueEntry], _QueueEntry], None] = _heappush,
    ) -> None:
        """Schedule *event* at the absolute simulated time *at*.

        Float addition is not associative, so re-deriving a stored
        deadline as ``now + (deadline - now)`` can land one ulp away from
        the original ``Timeout`` firing time.  Control-plane events that
        must fire at an exact recorded deadline (the timer wheel's sweep
        events) schedule through this method instead.
        """
        self._eid += 1
        sanitizer = self.sanitizer
        if sanitizer is None:
            _push(self._queue, (at, priority, self._eid, event))
        else:
            _push(
                self._queue,
                (at, priority, sanitizer.tie_key(at, priority, self._eid), event),
            )

    def step(
        self, _pop: Callable[[List[_QueueEntry]], _QueueEntry] = _heappop
    ) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when the queue is empty and
        re-raises the exception of any failed, un-defused event.
        """
        try:
            self._now, _, _, event = _pop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - cancelled event
            return
        self._events_processed += 1
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise exc
        if event.__class__ is _PooledTimeout:
            self._timeout_pool.append(event)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until the clock reaches that time), or an :class:`Event`
        (run until the event is processed, returning its value).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(
                    "until (=%s) must be greater than the current time (=%s)"
                    % (at, self._now)
                )
            until = Event(self)
            until._ok = True
            until._value = None
            # URGENT so the stop event runs before ordinary events at `at`.
            if self.sanitizer is None:
                self._eid += 1
                _heappush(self._queue, (at, URGENT, self._eid, until))
            else:
                self.schedule_at(until, at, priority=URGENT)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until.value
            until.callbacks.append(StopSimulation.callback)

        # Harness telemetry profiles the hot loop as one span and counts
        # processed events once per run() call (never per event).
        from ..obs.telemetry import TELEMETRY

        events_before = self._events_processed
        queue = self._queue
        timeout_pool = self._timeout_pool
        progress = self.progress
        stride_mask = self.PROGRESS_STRIDE - 1
        try:
            with TELEMETRY.span("engine.run"):
                # :meth:`step` inlined: one method call per event is the
                # largest fixed cost of the hot loop at CDN scale.  Any
                # behavioural change here must be mirrored in ``step``.
                # Two copies of the loop: the second adds the live
                # progress hook (one masked compare per event) and is
                # taken only when a hook is installed, so the default
                # path pays nothing.
                if progress is None:
                    while queue:
                        self._now, _, _, event = _heappop(queue)
                        callbacks, event.callbacks = event.callbacks, None
                        if callbacks is None:  # pragma: no cover - cancelled
                            continue
                        self._events_processed += 1
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                        if event.__class__ is _PooledTimeout:
                            timeout_pool.append(event)
                else:
                    while queue:
                        self._now, _, _, event = _heappop(queue)
                        callbacks, event.callbacks = event.callbacks, None
                        if callbacks is None:  # pragma: no cover - cancelled
                            continue
                        self._events_processed += 1
                        if self._events_processed & stride_mask == 0:
                            progress(self._now, self._events_processed)
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                        if event.__class__ is _PooledTimeout:
                            timeout_pool.append(event)
                raise EmptySchedule()
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "no scheduled events left but \"until\" event was not triggered"
                ) from None
        finally:
            if progress is not None:
                progress(self._now, self._events_processed)
            TELEMETRY.count(
                "engine.events", self._events_processed - events_before
            )
        return None

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after *delay*."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` drawn from (and recycled back into) a pool.

        Scheduling semantics are identical to :meth:`timeout` -- same
        event ordering, same sequence-number allocation -- but processed
        instances are reused, sparing one allocation per firing on hot
        sleep loops.  Contract: the caller must ``yield`` the timeout
        immediately and must not retain a reference past its firing, nor
        combine it into :meth:`all_of` / :meth:`any_of` conditions (the
        recycled object would be mutated under the condition).
        """
        pool = self._timeout_pool
        if not pool:
            return _PooledTimeout(self, delay, value)
        if delay < 0:
            raise ValueError("negative delay %s" % delay)
        timeout = pool.pop()
        timeout.callbacks = []
        timeout._ok = True
        timeout._value = value
        timeout._defused = False
        timeout._delay = delay
        self.schedule(timeout, delay=delay)
        return timeout

    def process(self, generator: Generator[Event, Any, Any]) -> "Process":
        """Start a new :class:`~repro.sim.process.Process` from *generator*."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Condition that succeeds once all *events* have succeeded."""
        from .process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """Condition that succeeds once any of *events* has succeeded."""
        from .process import AnyOf

        return AnyOf(self, list(events))
