"""Runtime schedule sanitizer: a race detector for the event kernel.

The kernel's determinism contract orders same-instant events by a
monotonic sequence number, so any two runs with the same seeds process
identical event sequences.  That also means the contract *hides* latent
order dependence: code whose outcome silently relies on the incidental
FIFO tie-break (rather than on simulated causality) produces stable --
but meaningless -- numbers, and the next kernel optimisation that
re-orders a tie turns into a silent results change.  This module is the
TSan-style answer, specialised for a discrete-event simulator:

**Tie-break perturbation.**  With a tie seed installed, every
NORMAL-priority queue entry's sequence slot becomes ``(r, seq)`` where
``r`` is drawn from a dedicated seeded stream (never from any model
stream): events scheduled for the same ``(time, priority)`` pop in a
random -- but reproducible -- order, while the global time/priority
order is untouched.  A model whose results are genuinely
order-independent produces bit-identical metrics, counters and
(within-instant canonicalized) traces under any tie seed; a model with
hidden order dependence diverges, and the diff is the diagnostic.  The
seq element keeps the tuple totally ordered (REP008) even when two
draws collide.

URGENT entries are never perturbed: URGENT is the kernel's internal
staging lane (process initialisation, the transport's legacy-kernel
start hops, ``run``'s stop event), and its same-instant FIFO order *is*
the documented contract -- "processes resume in registration order" --
not an incidental tie.  Perturbing it would shuffle which same-instant
``send()`` claims a shared output port first, i.e. re-run the model
under a different (equally arbitrary, explicitly specified) resumption
order rather than expose a hidden dependence on an unspecified one.
Model code never schedules URGENT (REP003's scheduling-call surface
keeps it that way), so every model-visible tie is still perturbed.

**Reentrancy traps.**  With traps enabled, the batched timer lanes
(:mod:`repro.sim.timers`) verify after every ``on_expire`` callback
that the callback did not mutate the lane's backing arrays, move its
head, or re-arm its control event mid-sweep -- the corruption shape of
the PR 8 reentrant-push bug, reported at the offending callback instead
of as a skipped timer three sweeps later.

Activation is environment-driven, read once at
:class:`~repro.sim.engine.Environment` construction (the same contract
as ``REPRO_LEGACY_KERNEL``):

- ``REPRO_SANITIZE=1`` enables the reentrancy/invariant traps;
- ``REPRO_SANITIZE_TIES=<int>`` seeds and enables tie perturbation
  (implies the traps).

``repro sanitize`` (see :mod:`repro.experiments.sanitize`) drives both
against real deployments and asserts replica identity.
"""

from __future__ import annotations

import os
from random import Random
from typing import Dict, Optional, Tuple, Union

from .engine import URGENT as _URGENT

__all__ = [
    "SANITIZE_ENV",
    "SANITIZE_TIES_ENV",
    "ScheduleSanitizer",
    "SanitizerError",
    "sanitizer_from_env",
]

#: Enables the reentrancy/invariant traps ("" and "0" mean off).
SANITIZE_ENV = "REPRO_SANITIZE"

#: Integer seed enabling tie-break perturbation (implies the traps).
SANITIZE_TIES_ENV = "REPRO_SANITIZE_TIES"

#: The sequence slot of a queue entry: a plain int normally, or the
#: sanitizer's ``(r, seq)`` pair under tie perturbation.  Both forms
#: are totally ordered and never mixed within one environment.
TieKey = Union[int, Tuple[float, int]]


class SanitizerError(AssertionError):
    """A sanitizer trap fired (lane corrupted mid-sweep, ...)."""


class ScheduleSanitizer:
    """Per-environment sanitizer state (see module docstring).

    ``tie_collisions`` counts scheduled entries that shared their
    ``(time, priority)`` slot with an earlier entry -- the ties whose
    order the perturbation actually changed.  A bit-identity proof over
    a run with zero collisions is vacuous; the driver reports the count
    so it cannot silently become one.
    """

    __slots__ = ("tie_rng", "traps", "tie_collisions", "_tie_seen")

    def __init__(self, tie_seed: Optional[int] = None, traps: bool = True) -> None:
        #: Dedicated tie stream -- deliberately separate from every
        #: model stream so perturbation cannot re-pair model draws.
        self.tie_rng: Optional[Random] = (
            Random(tie_seed) if tie_seed is not None else None
        )
        self.traps = bool(traps)
        self.tie_collisions = 0
        # (time, priority) pairs seen so far; bounded by the number of
        # distinct scheduling instants in the run (sanitize runs are
        # smoke-scale by design).
        self._tie_seen: Dict[Tuple[float, int], int] = {}

    @property
    def perturbs_ties(self) -> bool:
        return self.tie_rng is not None

    def tie_key(self, time: float, priority: int, seq: int) -> TieKey:
        """The sequence-slot value for a new queue entry.

        Under perturbation the slot becomes ``(r, seq)``: random within
        a ``(time, priority)`` tie, still totally ordered via ``seq``
        on the (measure-zero) chance of equal draws.  URGENT entries
        keep their plain sequence number -- same-instant FIFO order is
        the kernel's registration-order contract there, not a tie (see
        module docstring).  Mixed slot types within one ``(time,
        priority)`` run never compare: URGENT and NORMAL sort apart on
        the priority element first.
        """
        rng = self.tie_rng
        if rng is None or priority == _URGENT:
            return seq
        slot = (time, priority)
        seen = self._tie_seen
        count = seen.get(slot, 0)
        seen[slot] = count + 1
        if count:
            self.tie_collisions += 1
        return (rng.random(), seq)

    # ------------------------------------------------------------------
    # lane traps (called from repro.sim.timers under `traps`)
    # ------------------------------------------------------------------
    def check_lane_after_callback(
        self,
        lane: object,
        head_before: int,
        callback: object,
        payload: object,
    ) -> None:
        """Verify a lane survived one ``on_expire`` callback intact."""
        deadlines = getattr(lane, "deadlines")
        payloads = getattr(lane, "payloads")
        control = getattr(lane, "control")
        if getattr(lane, "head") != head_before:
            raise SanitizerError(
                "sanitizer: lane callback %r moved lane.head (%d -> %d) "
                "mid-sweep while expiring %r; callbacks must not touch "
                "lane backing state -- go through push()"
                % (callback, head_before, getattr(lane, "head"), payload)
            )
        if len(deadlines) != len(payloads):
            raise SanitizerError(
                "sanitizer: lane callback %r left parallel arrays ragged "
                "(%d deadlines vs %d payloads) while expiring %r; "
                "callbacks must not touch lane backing state"
                % (callback, len(deadlines), len(payloads), payload)
            )
        if control.callbacks is not None:
            raise SanitizerError(
                "sanitizer: lane callback %r re-armed the lane control "
                "event mid-sweep while expiring %r; the sweep's own "
                "re-arm pass is the sole arming point -- go through push()"
                % (callback, payload)
            )
        for index in range(1, len(deadlines)):
            if deadlines[index] < deadlines[index - 1]:
                raise SanitizerError(
                    "sanitizer: lane callback %r broke deadline "
                    "monotonicity (%r < %r at slot %d) while expiring %r"
                    % (
                        callback,
                        deadlines[index],
                        deadlines[index - 1],
                        index,
                        payload,
                    )
                )


def sanitizer_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[ScheduleSanitizer]:
    """Build the sanitizer requested by the environment (or ``None``).

    Read once per :class:`Environment` construction -- never at import
    time -- so tests and the driver can flip the switches with
    ``monkeypatch.setenv`` / a scoped ``os.environ`` update.
    """
    env = environ if environ is not None else os.environ
    ties = env.get(SANITIZE_TIES_ENV, "")
    traps = env.get(SANITIZE_ENV, "") not in ("", "0")
    if ties:
        try:
            tie_seed: Optional[int] = int(ties)
        except ValueError:
            raise ValueError(
                "%s must be an integer seed, got %r" % (SANITIZE_TIES_ENV, ties)
            ) from None
        return ScheduleSanitizer(tie_seed=tie_seed, traps=True)
    if traps:
        return ScheduleSanitizer(tie_seed=None, traps=True)
    return None
