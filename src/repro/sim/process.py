"""Processes and condition events for the simulation engine.

A *process* wraps a Python generator.  The generator describes the
behaviour of an actor over simulated time by ``yield``-ing events; the
process resumes when the yielded event is processed, receiving the
event's value as the result of the ``yield`` expression (or having the
event's exception thrown into it if the event failed).
"""

from __future__ import annotations

from typing import Any, Generator, Iterator, List, Optional, Tuple

from .engine import Environment, Event, URGENT, _PENDING

__all__ = ["Process", "Interrupt", "Condition", "AllOf", "AnyOf", "ConditionValue"]


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:
        return "Interrupt(%r)" % (self.cause,)


class _Initialize(Event):
    """Internal event that starts the execution of a new process."""

    __slots__ = ()

    def __init__(self, env: Environment, process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _Interruption(Event):
    """Internal event delivering an :class:`Interrupt` to a process."""

    __slots__ = ("_process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise RuntimeError("%r has terminated and cannot be interrupted" % process)
        if process is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self._process = process
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self._process
        if process.triggered:
            return  # the process terminated before the interrupt arrived
        # Detach the process from whatever event it is waiting on so the
        # interrupt, not the stale event, resumes it.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        process._resume(event)


class Process(Event):
    """A process wrapping a generator; it is also an event that fires
    (with the generator's return value) when the generator terminates."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: Environment, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ValueError("%r is not a generator" % (generator,))
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = _Initialize(env, self)

    def __repr__(self) -> str:
        return "<Process(%s) object at 0x%x>" % (
            getattr(self._generator, "__name__", self._generator),
            id(self),
        )

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator terminates."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` (with *cause*) into the process."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the state of *event*."""
        env = self.env
        env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The process handles (or propagates) the failure.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                # Generator finished: the process event succeeds.
                self._ok = True
                self._value = getattr(stop, "value", None)
                env.schedule(self)
                break
            except BaseException as exc:
                # Generator crashed: the process event fails.
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            # The generator yielded `next_event`: wait for it.
            if not isinstance(next_event, Event):
                exc = RuntimeError(
                    "invalid yield value %r (expected an Event)" % (next_event,)
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Already processed: loop around and resume immediately with it.
            event = next_event

        env._active_proc = None


class ConditionValue:
    """Mapping-like result of a condition: the values of fired events,
    keyed by the event objects, in trigger order."""

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return "<ConditionValue %s>" % self.todict()

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def keys(self) -> Iterator[Event]:
        return iter(self.events)

    def values(self) -> Iterator[Any]:
        return (event._value for event in self.events)

    def items(self) -> Iterator[Tuple[Event, Any]]:
        return ((event, event._value) for event in self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}


class Condition(Event):
    """An event that fires when ``evaluate(events, n_fired)`` is true."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env: Environment, evaluate, events: List[Event]) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Evaluate vacuously-true conditions immediately.
        if self._evaluate(self._events, 0):
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _fired(self) -> List[Event]:
        # ``processed`` rather than ``triggered``: a Timeout carries its
        # value from construction (is "triggered"), but has only *fired*
        # once the event loop has run its callbacks.
        return [event for event in self._events if event.processed]

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # A failed constituent fails the whole condition.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._fired()))

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once all constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once any constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
