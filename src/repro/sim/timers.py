"""Batched timer wheel: one control event per sweep of expiring timers.

The legacy kernel allocates one :class:`~repro.sim.engine.Timeout` plus
one condition per timed wait, and every expiry is its own heap pop.  At
CDN scale the poll/request timers dominate the event queue, so the wheel
batches them: waiters that share a *delay* (all ``30 s`` request
timeouts, all ``ttl_s`` poll timers, ...) land in one *lane* -- a pair
of parallel arrays (deadline floats aligned with waiter events).
Because every entry in a lane is armed with the same delay, deadlines
are appended in non-decreasing order and a single binary search finds
the expired prefix.  The arrays are plain Python lists swept with the C
:func:`bisect.bisect_right`: at the typical batch size (one to a few
hundred entries) that beats a numpy round-trip per sweep, while keeping
the same sorted-array algorithm.

Each lane owns exactly one reusable control :class:`Event` on the heap.
It is scheduled (via :meth:`Environment.schedule_at`, to hit the exact
float deadline a legacy ``Timeout`` would have used) for the earliest
pending deadline; when it pops, the sweep succeeds every expired waiter
and re-arms the control event for the next deadline.  N timers cost one
control pop per *batch* of identical deadlines instead of one pop per
timer, and cancelled waiters (``callbacks is None`` or already
triggered) are skipped lazily without ever touching the heap.

Determinism: a waiter armed at time ``t`` with delay ``d`` is succeeded
at exactly ``t + d`` (the same float the legacy ``Timeout`` computes),
and waiters expiring at the same instant are succeeded in arming order,
which matches the sequence-number order the legacy per-timer events
would have popped in.  Waiter callbacks run through the heap
(:meth:`Event.succeed` schedules), so user code can never push into a
lane in the middle of its own sweep.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional

from .engine import Environment, Event

__all__ = ["TimerWheel", "CallbackLane"]

#: Swept (dead) slots tolerated at the front of a lane before the
#: backing lists are compacted.
_COMPACT_SLACK = 1024


class _Lane:
    """All pending timers sharing one delay value (parallel arrays)."""

    __slots__ = ("env", "wheel", "deadlines", "waiters", "head", "control")

    def __init__(self, env: Environment, wheel: "TimerWheel") -> None:
        self.env = env
        self.wheel = wheel
        self.deadlines: List[float] = []
        self.waiters: List[Optional[Event]] = []
        self.head = 0
        # The lane's one reusable control event.  Pre-triggered so the
        # engine never sees _PENDING; idle iff ``callbacks is None``.
        control = Event(env)
        control._ok = True
        control._value = None
        control.callbacks = None
        self.control = control

    def push(self, deadline: float, waiter: Event) -> None:
        self.deadlines.append(deadline)
        self.waiters.append(waiter)
        control = self.control
        if control.callbacks is None:
            # Lane was drained: arm the control event at this deadline.
            control.callbacks = [self._sweep]
            self.env.schedule_at(control, deadline)
        # Otherwise the control event is already scheduled at an earlier
        # (or equal) deadline: same-delay arming keeps lanes monotone.

    def _sweep(self, _event: Event) -> None:
        """Control-event callback: fire every expired waiter in order."""
        deadlines = self.deadlines
        waiters = self.waiters
        head = self.head
        tail = len(deadlines)
        cut = bisect_right(deadlines, self.env._now, head, tail)
        wheel = self.wheel
        for index in range(head, cut):
            waiter = waiters[index]
            waiters[index] = None
            if waiter is None or waiter.callbacks is None or waiter.triggered:
                wheel.cancelled += 1  # lazily-cancelled: never hit the heap
            else:
                waiter.succeed(None)
                wheel.expired += 1
        wheel.sweeps += 1
        # Prune already-dead waiters *beyond* the expired prefix before
        # re-arming.  Request timeouts are normally answered long before
        # they fire, so by the time one control pop comes due, nearly
        # the whole lane is cancelled: skipping those slots here means
        # the control event re-arms at the first *live* deadline (often
        # none at all) instead of popping once per dead batch.
        while cut < tail:
            waiter = waiters[cut]
            if waiter is not None and waiter.callbacks is not None and not waiter.triggered:
                break
            waiters[cut] = None
            wheel.cancelled += 1
            cut += 1
        if cut < tail:
            if cut >= _COMPACT_SLACK and cut * 2 >= tail:
                # Mostly dead slots at the front: reclaim the memory.
                del deadlines[:cut]
                del waiters[:cut]
                cut = 0
            self.head = cut
            control = self.control
            control.callbacks = [self._sweep]
            self.env.schedule_at(control, deadlines[cut])
        else:
            # Drained: reset so the backing lists restart from slot 0.
            deadlines.clear()
            waiters.clear()
            self.head = 0


class CallbackLane:
    """A monotone-deadline lane that fires ``on_expire(payload)`` per slot.

    Same sweep mechanics as the wheel's internal ``_Lane`` -- parallel
    arrays, a bisect-swept expired prefix, one reusable control event,
    lazy cancellation with dead-slot pruning -- but payload-carrying and
    callback-driven, for subsystems that batch their own timers (the
    user cohort's request timeouts).  Deadlines must be pushed in
    non-decreasing order (one lane per fixed delay gives this for
    free); ``is_dead(payload)`` lets already-answered slots be pruned
    without ever touching the heap.

    Unlike waiter lanes, ``on_expire`` runs *inside* the control-event
    callback rather than through a per-slot heap event.  Slots expiring
    at the same instant fire in arming order, the order their per-timer
    events would have popped in.
    """

    __slots__ = (
        "env", "deadlines", "payloads", "head", "control", "on_expire",
        "is_dead", "armed", "expired", "cancelled", "sweeps", "_sweeping",
    )

    def __init__(
        self,
        env: Environment,
        on_expire: Callable[[Any], None],
        is_dead: Callable[[Any], bool],
    ) -> None:
        self.env = env
        self.on_expire = on_expire
        self.is_dead = is_dead
        self.deadlines: List[float] = []
        self.payloads: List[Any] = []
        self.head = 0
        control = Event(env)
        control._ok = True
        control._value = None
        control.callbacks = None
        self.control = control
        self.armed = 0
        self.expired = 0
        self.cancelled = 0
        self.sweeps = 0
        self._sweeping = False

    def push(self, deadline: float, payload: Any) -> None:
        deadlines = self.deadlines
        if deadlines and deadline < deadlines[-1]:
            raise ValueError(
                "CallbackLane deadlines must be monotone: %r < %r"
                % (deadline, deadlines[-1])
            )
        deadlines.append(deadline)
        self.payloads.append(payload)
        self.armed += 1
        control = self.control
        # During a sweep the engine has already taken the control
        # event's callbacks, so ``callbacks is None`` does not mean
        # "unarmed"; the sweep's own re-arm pass (which sees this push)
        # is the sole arming point then -- arming here too would leave
        # a duplicate heap entry AND could arm later than an older
        # still-pending slot.
        if control.callbacks is None and not self._sweeping:
            control.callbacks = [self._sweep]
            self.env.schedule_at(control, deadline)

    def _sweep(self, _event: Event) -> None:
        deadlines = self.deadlines
        payloads = self.payloads
        head = self.head
        tail = len(deadlines)
        cut = bisect_right(deadlines, self.env._now, head, tail)
        is_dead = self.is_dead
        on_expire = self.on_expire
        sanitizer = self.env.sanitizer
        if sanitizer is not None and not sanitizer.traps:
            sanitizer = None
        self._sweeping = True
        try:
            for index in range(head, cut):
                payload = payloads[index]
                payloads[index] = None
                if payload is None or is_dead(payload):
                    self.cancelled += 1
                else:
                    on_expire(payload)
                    self.expired += 1
                    if sanitizer is not None:
                        # Trap the PR 8 corruption shape at its source:
                        # a callback that touched the arrays mid-sweep.
                        # ``head`` is the pre-sweep value -- the sweep
                        # itself only moves it after this loop.
                        sanitizer.check_lane_after_callback(
                            self, head, on_expire, payload
                        )
        finally:
            self._sweeping = False
        self.sweeps += 1
        # ``on_expire`` may have pushed new slots: re-read the tail so
        # the re-arm/drain decision below sees them.
        tail = len(deadlines)
        while cut < tail:
            payload = payloads[cut]
            if payload is not None and not is_dead(payload):
                break
            payloads[cut] = None
            self.cancelled += 1
            cut += 1
        if cut < tail:
            if cut >= _COMPACT_SLACK and cut * 2 >= tail:
                del deadlines[:cut]
                del payloads[:cut]
                cut = 0
            self.head = cut
            control = self.control
            control.callbacks = [self._sweep]
            self.env.schedule_at(control, deadlines[cut])
        else:
            deadlines.clear()
            payloads.clear()
            self.head = 0

    @property
    def pending(self) -> int:
        return len(self.deadlines) - self.head


class TimerWheel:
    """Per-environment registry of delay lanes (see module docstring)."""

    __slots__ = ("env", "_lanes", "armed", "expired", "cancelled", "sweeps")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._lanes: Dict[float, _Lane] = {}
        #: Stats (for tests / docs): timers armed, fired, lazily dropped,
        #: and control-event sweeps executed.
        self.armed = 0
        self.expired = 0
        self.cancelled = 0
        self.sweeps = 0

    def arm(self, delay: float, waiter: Event) -> None:
        """Succeed *waiter* with ``None`` after *delay* unless it triggers
        first.

        The waiter is observed lazily at expiry: if it has already been
        succeeded (a response arrived) or processed, the slot is skipped.
        Callers therefore need no explicit cancel -- dropping the timer
        costs nothing on the heap.
        """
        if delay < 0:
            raise ValueError("negative delay %s" % delay)
        env = self.env
        lane = self._lanes.get(delay)
        if lane is None:
            lane = self._lanes[delay] = _Lane(env, self)
        # Same float arithmetic as ``Timeout``: now + delay.
        lane.push(env._now + delay, waiter)
        self.armed += 1

    @property
    def pending(self) -> int:
        """Number of timer slots currently queued across all lanes
        (including lazily-cancelled waiters not yet swept)."""
        return sum(len(lane.deadlines) - lane.head for lane in self._lanes.values())
