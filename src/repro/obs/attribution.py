"""Cause attribution: which layer contributed the observed staleness.

Mirrors the paper's Sections 3.4.2-3.4.5 breakdown (Figs. 6-10): the
mean server inconsistency of a run is decomposed into the *measured*
network components every update had to traverse -- sender queueing /
transmission (provider bandwidth, Fig. 10), distance-driven propagation
(Fig. 8) and inter-ISP handoffs (Fig. 9) -- with the remainder
attributed to the update method's own wait (TTL expiry / visit wait,
Fig. 6), alongside the failure-injection context (absences, drops,
Fig. 10).

Everything is computed from the always-on
:class:`~repro.obs.counters.FabricCounters` totals carried by
:class:`~repro.experiments.testbed.DeploymentMetrics`; no tracing is
required.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["attribution_components", "format_attribution_table"]


def attribution_components(metrics) -> Dict[str, float]:
    """Per-layer decomposition of one deployment's staleness.

    Returns a dict with, per consistency-relevant layer, the *mean
    seconds per message* each network layer added (``propagation_s``,
    ``inter_isp_s``, ``sender_queueing_s``), the residual attributed to
    the update method (``policy_wait_s``, clamped at zero), and run
    context (``mean_server_lag_s``, ``isp_crossing_fraction``,
    ``dropped_messages``, ``node_downtime_s``).
    """
    sent = sum(metrics.message_counts.values()) if metrics.message_counts else 0
    per_message = 1.0 / sent if sent else 0.0
    propagation = metrics.propagation_s * per_message
    inter_isp = metrics.isp_penalty_s * per_message
    queueing = metrics.queueing_s * per_message
    lag = metrics.mean_server_lag
    policy_wait = max(0.0, lag - propagation - inter_isp - queueing)
    return {
        "mean_server_lag_s": lag,
        "propagation_s": propagation,
        "inter_isp_s": inter_isp,
        "sender_queueing_s": queueing,
        "policy_wait_s": policy_wait,
        "isp_crossing_fraction": (
            metrics.isp_crossing_messages * per_message if sent else 0.0
        ),
        "dropped_messages": float(metrics.dropped_messages),
        "node_downtime_s": metrics.node_downtime_s,
    }


#: (column header, component key, format) of the printed table.
_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("server lag (s)", "mean_server_lag_s", "%.3f"),
    ("policy wait (s)", "policy_wait_s", "%.3f"),
    ("queueing (s)", "sender_queueing_s", "%.4f"),
    ("propagation (s)", "propagation_s", "%.4f"),
    ("inter-ISP (s)", "inter_isp_s", "%.4f"),
    ("ISP-crossing", "isp_crossing_fraction", "%.1f%%"),
    ("drops", "dropped_messages", "%d"),
    ("downtime (s)", "node_downtime_s", "%.1f"),
)


def format_attribution_table(
    metrics_by_label: Dict[str, object],
    title: str = "Cause attribution (per-layer staleness contribution)",
) -> List[str]:
    """Markdown table lines, one row per labelled deployment.

    Per-message means for the network layers, the policy-wait residual,
    and the failure context -- the shape of the paper's Fig. 6-10 story,
    printed under each figure.
    """
    lines = [title, "", "| run | " + " | ".join(c[0] for c in _COLUMNS) + " |"]
    lines.append("|---|" + "---|" * len(_COLUMNS))
    for label, metrics in metrics_by_label.items():
        components = attribution_components(metrics)
        cells = []
        for _, key, fmt in _COLUMNS:
            value = components[key]
            if fmt.endswith("%%"):
                cells.append(fmt % (100.0 * value))
            elif fmt == "%d":
                cells.append(fmt % int(value))
            else:
                cells.append(fmt % value)
        lines.append("| %s | %s |" % (label, " | ".join(cells)))
    return lines
