"""Scalable tracing: deterministic sampling and streaming JSONL sinks.

The PR 2 :class:`~repro.obs.tracer.RecordingTracer` stores every event
in memory; at planet scale (100k servers x 1M users, ~10^8 events) that
is unusable.  This module keeps traces *bounded* on both axes:

- **bounded memory** -- :class:`SamplingTracer` keeps at most
  ``per_kind_budget`` events per event kind in a stratified reservoir
  (one reservoir per kind, so rare kinds -- ``node_down``,
  ``mode_switch`` -- are never starved by the flood of ``visit`` /
  ``msg_send`` events), plus exact per-kind totals;
- **bounded disk** -- :class:`JsonlTraceSink` streams sampled events to
  a rotating JSONL file set (``trace.jsonl``, ``trace.jsonl.1``, ...),
  capped at ``rotate_kb`` per file and ``keep`` rotated files;
- **bounded output** -- :class:`StreamTracer` writes filtered events
  incrementally as they are emitted (the ``repro trace`` path), so a
  dump never materialises the full event list first.

Determinism: every sampling decision is a pure function of
``(seed, kind, per-kind index)`` through keyed BLAKE2b -- the same
primitive :func:`repro.sim.rng.derive_seed` uses -- so the same seed
always selects the same event set, and the tracer owns a *dedicated*
decision stream by construction: it never imports ``random``, never
touches a :class:`~repro.sim.rng.RandomStream`, and never schedules
kernel events (lint rule REP003 enforces all three).  Attaching a
sampling tracer therefore cannot change any simulated outcome: traced
and untraced runs are bit-identical in every metric
(``tests/test_sampling.py`` proves it, extending the PR 2 on/off
determinism tests).
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, Iterable, List, Optional, TextIO, Tuple

from .tracer import TraceEvent, Tracer

__all__ = [
    "SamplingTracer",
    "JsonlTraceSink",
    "StreamTracer",
    "decision_unit",
    "decision_index",
]

#: 2**64, the denominator mapping a BLAKE2b digest to [0, 1).
_UNIT_DENOM = float(1 << 64)


def _digest(seed: int, domain: str, kind: str, index: int) -> int:
    """64-bit keyed BLAKE2b of ``(seed, domain, kind, index)``."""
    raw = hashlib.blake2b(
        ("%s:%s:%d" % (domain, kind, index)).encode("utf-8"),
        key=str(int(seed)).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(raw, "big")


def decision_unit(seed: int, kind: str, index: int) -> float:
    """The sampling stream: a deterministic value in ``[0, 1)`` for the
    *index*-th event of *kind* under *seed* (keep iff ``< rate``)."""
    return _digest(seed, "keep", kind, index) / _UNIT_DENOM


def decision_index(seed: int, kind: str, index: int, modulus: int) -> int:
    """Reservoir slot stream: a deterministic int in ``[0, modulus)``."""
    if modulus <= 0:
        raise ValueError("modulus must be positive, got %d" % modulus)
    return _digest(seed, "slot", kind, index) % modulus


class JsonlTraceSink:
    """A rotating JSON Lines sink for sampled trace events.

    Writes land in *path*; once a file exceeds ``rotate_kb`` KiB it is
    rotated (``path`` -> ``path.1`` -> ``path.2`` ...) and at most
    *keep* rotated files are retained, so disk usage is bounded by
    ``(keep + 1) * rotate_kb`` regardless of run length.
    """

    def __init__(self, path: str, rotate_kb: int = 4096, keep: int = 3) -> None:
        if rotate_kb <= 0:
            raise ValueError("rotate_kb must be positive, got %d" % rotate_kb)
        if keep < 0:
            raise ValueError("keep must be >= 0, got %d" % keep)
        self.path = path
        self.rotate_bytes = int(rotate_kb) * 1024
        self.keep = keep
        self.rows_written = 0
        self.rotations = 0
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        self._handle: Optional[TextIO] = open(path, "w")
        self._bytes = 0

    def write(self, event: TraceEvent) -> None:
        """Append one event as a JSONL row (rotating when over budget)."""
        handle = self._handle
        if handle is None:
            raise ValueError("sink %s is closed" % self.path)
        row = event.to_json() + "\n"
        handle.write(row)
        self.rows_written += 1
        self._bytes += len(row)
        if self._bytes >= self.rotate_bytes:
            self._rotate()

    def _rotate(self) -> None:
        assert self._handle is not None
        self._handle.close()
        if self.keep == 0:
            # No rotated files retained: truncate in place.
            self._handle = open(self.path, "w")
        else:
            oldest = "%s.%d" % (self.path, self.keep)
            if os.path.exists(oldest):
                os.unlink(oldest)
            for index in range(self.keep - 1, 0, -1):
                source = "%s.%d" % (self.path, index)
                if os.path.exists(source):
                    os.replace(source, "%s.%d" % (self.path, index + 1))
            os.replace(self.path, self.path + ".1")
            self._handle = open(self.path, "w")
        self._bytes = 0
        self.rotations += 1

    def files(self) -> List[str]:
        """Existing sink files, newest first (``path``, ``path.1``, ...)."""
        found = [self.path] if os.path.exists(self.path) else []
        for index in range(1, self.keep + 1):
            rotated = "%s.%d" % (self.path, index)
            if os.path.exists(rotated):
                found.append(rotated)
        return found

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _KindReservoir:
    """Uniform reservoir of at most *budget* events of one kind.

    Classic algorithm R, with the replacement index drawn from the
    deterministic slot stream instead of an RNG: over the first ``n``
    *kept* events each has probability ``budget / n`` of being present.
    """

    __slots__ = ("budget", "kept", "entries")

    def __init__(self, budget: int) -> None:
        self.budget = budget
        #: Events that passed the rate filter (reservoir candidates).
        self.kept = 0
        #: ``(emit_seq, event)`` pairs currently held.
        self.entries: List[Tuple[int, TraceEvent]] = []

    def offer(self, seed: int, kind: str, seq: int, event: TraceEvent) -> None:
        self.kept += 1
        if self.budget <= 0:
            return
        if len(self.entries) < self.budget:
            self.entries.append((seq, event))
            return
        slot = decision_index(seed, kind, self.kept, self.kept)
        if slot < self.budget:
            self.entries[slot] = (seq, event)


class SamplingTracer(Tracer):
    """A bounded-memory tracer for planet-scale runs.

    Parameters
    ----------
    seed:
        Seeds the decision stream.  Same seed + same event sequence =>
        same sampled event set, always.
    rate:
        Fraction of events (per kind) admitted past the pre-filter, in
        ``[0, 1]``.  ``1.0`` admits everything (the reservoirs still
        bound memory).
    per_kind_budget:
        Reservoir capacity per event kind.  Each kind keeps a uniform
        sample of at most this many of its admitted events, so rare
        kinds survive no matter how loud the common ones are.
    rates:
        Optional per-kind overrides of *rate* (e.g. ``{"visit": 0.01}``
        to thin the flood while keeping every failure event).
    sink:
        Optional :class:`JsonlTraceSink` (or anything with a
        ``write(event)`` method); every *admitted* event streams to it
        as it happens, before reservoir eviction can drop it.

    Exact per-kind emit totals are always kept (``kind_counts``), so
    reconciliation against fabric counters still works under sampling.
    """

    __slots__ = (
        "seed",
        "rate",
        "per_kind_budget",
        "rates",
        "sink",
        "_counts",
        "_admitted",
        "_reservoirs",
        "_seq",
    )
    enabled = True

    def __init__(
        self,
        seed: int = 0,
        rate: float = 1.0,
        per_kind_budget: int = 256,
        rates: Optional[Dict[str, float]] = None,
        sink: Optional[JsonlTraceSink] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1], got %r" % (rate,))
        if per_kind_budget < 0:
            raise ValueError(
                "per_kind_budget must be >= 0, got %d" % per_kind_budget
            )
        self.seed = int(seed)
        self.rate = float(rate)
        self.per_kind_budget = int(per_kind_budget)
        self.rates: Dict[str, float] = dict(rates) if rates else {}
        for kind, value in self.rates.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    "rate for kind %r must be in [0, 1], got %r" % (kind, value)
                )
        self.sink = sink
        #: Exact emit totals per kind (sampling never loses the counts).
        self._counts: Dict[str, int] = {}
        #: Events admitted past the rate filter, per kind.
        self._admitted: Dict[str, int] = {}
        self._reservoirs: Dict[str, _KindReservoir] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Events currently held in memory (bounded by kinds x budget)."""
        return sum(len(r.entries) for r in self._reservoirs.values())

    def emit(self, time: float, kind: str, node: str, **detail: Any) -> None:
        count = self._counts.get(kind, 0) + 1
        self._counts[kind] = count
        rate = self.rates.get(kind, self.rate)
        if rate < 1.0 and decision_unit(self.seed, kind, count) >= rate:
            return
        self._admitted[kind] = self._admitted.get(kind, 0) + 1
        self._seq += 1
        event = TraceEvent(time, kind, node, detail)
        sink = self.sink
        if sink is not None:
            sink.write(event)
        reservoir = self._reservoirs.get(kind)
        if reservoir is None:
            reservoir = self._reservoirs[kind] = _KindReservoir(
                self.per_kind_budget
            )
        reservoir.offer(self.seed, kind, self._seq, event)

    # ------------------------------------------------------------------
    def events(
        self,
        node: Optional[str] = None,
        kinds: Optional[Iterable[str]] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Reservoir contents in emit order, filtered like
        :meth:`RecordingTracer.events`."""
        wanted = frozenset(kinds) if kinds is not None else None
        stamped: List[Tuple[int, TraceEvent]] = []
        for kind, reservoir in self._reservoirs.items():
            if wanted is not None and kind not in wanted:
                continue
            for seq, event in reservoir.entries:
                if node is not None and event.node != node:
                    continue
                if since is not None and event.time < since:
                    continue
                if until is not None and event.time >= until:
                    continue
                stamped.append((seq, event))
        stamped.sort(key=lambda pair: pair[0])
        return [event for _, event in stamped]

    def kind_counts(self) -> Dict[str, int]:
        """EXACT emit totals per kind (independent of sampling)."""
        return dict(self._counts)

    def admitted_counts(self) -> Dict[str, int]:
        """Events past the rate filter per kind (== streamed to a sink)."""
        return dict(self._admitted)

    def held_counts(self) -> Dict[str, int]:
        """Events currently in each kind's reservoir."""
        return {
            kind: len(reservoir.entries)
            for kind, reservoir in self._reservoirs.items()
        }

    def summary(self) -> Dict[str, Any]:
        """One JSON-safe dict describing what sampling did."""
        total = sum(self._counts.values())
        admitted = sum(self._admitted.values())
        return {
            "seed": self.seed,
            "rate": self.rate,
            "per_kind_budget": self.per_kind_budget,
            "emitted": total,
            "admitted": admitted,
            "held": len(self),
            "kinds": len(self._counts),
            "sink_rows": self.sink.rows_written if self.sink is not None else 0,
        }

    def close(self) -> None:
        """Close the attached sink (reservoir contents stay readable)."""
        if self.sink is not None:
            self.sink.close()


class StreamTracer(Tracer):
    """Write-through tracer: filtered events stream out as they happen.

    This is the ``repro trace`` path for big deployments -- nothing is
    retained in memory beyond exact per-kind counts, so a planet-scale
    dump's RSS does not grow with the event count.  Filters match
    :meth:`RecordingTracer.events` (``since`` inclusive, ``until``
    exclusive); *limit* caps the rows written (counting continues).
    """

    __slots__ = (
        "_stream",
        "node",
        "kinds",
        "since",
        "until",
        "limit",
        "written",
        "_counts",
    )
    enabled = True

    def __init__(
        self,
        stream: TextIO,
        node: Optional[str] = None,
        kinds: Optional[Iterable[str]] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> None:
        self._stream = stream
        self.node = node
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.since = since
        self.until = until
        self.limit = limit
        self.written = 0
        self._counts: Dict[str, int] = {}

    def emit(self, time: float, kind: str, node: str, **detail: Any) -> None:
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if self.limit is not None and self.written >= self.limit:
            return
        if self.node is not None and node != self.node:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.since is not None and time < self.since:
            return
        if self.until is not None and time >= self.until:
            return
        self._stream.write(TraceEvent(time, kind, node, detail).to_json())
        self._stream.write("\n")
        self.written += 1

    def kind_counts(self) -> Dict[str, int]:
        """Exact emit totals per kind (pre-filter)."""
        return dict(self._counts)

    def total_emitted(self) -> int:
        return sum(self._counts.values())
