"""Observability: structured tracing, per-layer counters, cause attribution.

The paper's cause analysis (Sections 3.4.2-3.4.5) attributes observed
inconsistency to concrete mechanisms -- TTL expiry, propagation
distance, inter-ISP hops, provider bandwidth, server failures.  This
package gives the simulator the same per-event visibility:

- :mod:`repro.obs.tracer` -- a :class:`Tracer` attached to the sim
  :class:`~repro.sim.engine.Environment`.  The default
  :data:`NULL_TRACER` is a no-op (no per-event allocation on the off
  path); :class:`RecordingTracer` records structured
  :class:`TraceEvent` rows and can dump them as JSONL with filtering.
- :mod:`repro.obs.counters` -- :class:`FabricCounters`, the always-on
  per-layer accounting (per-link and per-ISP-crossing bytes, queueing /
  propagation / inter-ISP seconds, drops) aggregated into
  :class:`~repro.experiments.testbed.DeploymentMetrics`.  Counters are
  independent of the tracer, so metrics are bit-identical with tracing
  on or off.
- :mod:`repro.obs.attribution` -- turns one deployment's counters into
  the per-layer cause-attribution table mirroring the paper's
  Figs. 6-10 breakdown.
- :mod:`repro.obs.telemetry` -- *harness* telemetry (as opposed to the
  simulated CDN): the process-wide :data:`TELEMETRY` metrics registry
  (counters / gauges / histograms) and the ``span("phase")`` profiler,
  rolled up across Runner workers into a ``telemetry.json`` artifact and
  surfaced by ``repro metrics`` / ``repro profile``.
- :mod:`repro.obs.sampling` -- planet-scale tracing:
  :class:`SamplingTracer` (deterministic seeded per-kind sampling into
  stratified reservoirs, bounded memory) with the rotating
  :class:`JsonlTraceSink` (bounded disk), and :class:`StreamTracer`
  (write-through filtered dumps for ``repro trace``).
- :mod:`repro.obs.live` -- live run progress: per-worker
  :class:`Heartbeat` snapshots and the Runner-side
  :class:`ProgressTracker` behind ``<registry>.progress.json`` and the
  ``repro watch`` CLI.
"""

from .attribution import attribution_components, format_attribution_table
from .counters import FabricCounters, staleness_histogram
from .live import Heartbeat, ProgressTracker, default_progress_path
from .sampling import JsonlTraceSink, SamplingTracer, StreamTracer
from .telemetry import (
    TELEMETRY,
    TELEMETRY_ENV,
    MetricsRegistry,
    profiled,
    span,
)
from .tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    RecordingTracer,
    Tracer,
    TraceEvent,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "RecordingTracer",
    "NULL_TRACER",
    "EVENT_KINDS",
    "SamplingTracer",
    "JsonlTraceSink",
    "StreamTracer",
    "Heartbeat",
    "ProgressTracker",
    "default_progress_path",
    "FabricCounters",
    "staleness_histogram",
    "attribution_components",
    "format_attribution_table",
    "TELEMETRY",
    "TELEMETRY_ENV",
    "MetricsRegistry",
    "span",
    "profiled",
]
