"""Live run progress: worker heartbeats and the sweep progress file.

A planet-scale ``repro sweep`` is opaque while it runs: the Runner's
workers grind through sharded deployments for minutes with nothing on
screen until the final report.  This module makes an in-flight sweep
observable without touching a single simulated outcome:

- :class:`Heartbeat` -- installed as the engine's ``progress`` hook
  inside each worker process, it periodically (wall-clock rate-limited)
  writes an atomic JSON snapshot -- sim-time, horizon fraction, events
  processed, events/s, peak RSS, telemetry counter deltas -- to
  ``<registry>.progress.d/<label>.json``;
- :class:`ProgressTracker` -- the Runner-side writer of
  ``<registry>.progress.json``: spec totals, per-spec completion,
  cache hits, and final stats, updated from pool completion callbacks
  (thread-safe; the pool's result-handler thread calls in);
- the read/merge/render helpers behind ``repro watch``, which tails
  both files and folds worker heartbeats together with the PR 5
  telemetry merge algebra (:func:`~repro.obs.telemetry.merge_snapshots`
  semantics: counters sum, ``peak_rss_kb`` maxes).

Like :mod:`repro.obs.telemetry`, this module legitimately reads wall
clocks (heartbeats are rate-limited in real time) and is exempted from
lint rule REP002 in :data:`repro.lint.exemptions.EXEMPTIONS`.  It is
still bound by REP003 observer purity: nothing here schedules events or
draws RNG, so installing a heartbeat cannot change any simulated
outcome.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from .telemetry import TELEMETRY, peak_rss_kb

__all__ = [
    "PROGRESS_DIR_ENV",
    "PROGRESS_FORMAT",
    "HEARTBEAT_FORMAT",
    "Heartbeat",
    "ProgressTracker",
    "default_progress_path",
    "heartbeat_dir",
    "read_progress",
    "read_heartbeats",
    "merge_heartbeats",
    "render_watch",
]

#: Environment variable carrying the heartbeat directory into Runner
#: worker processes (set by the Runner around its pool, inherited on
#: fork/spawn).  Unset means no heartbeats.
PROGRESS_DIR_ENV = "REPRO_PROGRESS_DIR"

#: Version tag of the ``<registry>.progress.json`` shape.
PROGRESS_FORMAT = 1

#: Version tag of one worker heartbeat file's shape.
HEARTBEAT_FORMAT = 1


def default_progress_path(registry_path: str) -> str:
    """``runs.json`` -> ``runs.progress.json`` (next to the registry)."""
    base = registry_path
    if base.endswith(".json"):
        base = base[: -len(".json")]
    return base + ".progress.json"


def heartbeat_dir(progress_path: str) -> str:
    """The worker-heartbeat directory for a progress file
    (``runs.progress.json`` -> ``runs.progress.d``)."""
    base = progress_path
    if base.endswith(".json"):
        base = base[: -len(".json")]
    return base + ".d"


def _atomic_write_json(path: str, doc: Dict[str, Any]) -> None:
    """Write *doc* to *path* via tempfile + rename, so readers never see
    a torn file (the same idiom as ``append_run_entry``)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(doc, handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):  # pragma: no cover - error path
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def _safe_label(label: str) -> str:
    """A filesystem-safe heartbeat filename stem for *label*."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in label)


class Heartbeat:
    """One worker's live progress hook (engine ``progress`` callable).

    Installed on :attr:`Environment.progress
    <repro.sim.engine.Environment.progress>`, the engine invokes it
    every ``PROGRESS_STRIDE`` processed events with
    ``(sim_time, events_processed)``.  Writes are rate-limited to one
    per *min_interval_s* of wall time, so the hook costs a clock read
    on most invocations and an atomic small-file write about once a
    second.

    The snapshot includes the delta of the worker's telemetry counters
    since the heartbeat was created, so ``repro watch`` can show
    per-shard message/event totals mid-run using the PR 5 merge algebra.
    """

    def __init__(
        self,
        path: str,
        label: str,
        horizon: Optional[float] = None,
        min_interval_s: float = 1.0,
    ) -> None:
        self.path = path
        self.label = label
        self.horizon = horizon
        self.min_interval_s = float(min_interval_s)
        self.writes = 0
        self._started_wall = time.time()
        self._last_write_wall = 0.0
        self._counters_before: Dict[str, float] = dict(TELEMETRY._counters)

    def __call__(self, sim_time: float, events_processed: int) -> None:
        now_wall = time.time()
        if now_wall - self._last_write_wall < self.min_interval_s:
            return
        self._last_write_wall = now_wall
        self._write(sim_time, events_processed, now_wall)

    def finish(self, sim_time: float, events_processed: int) -> None:
        """Force a final write (no rate limit) when the run completes."""
        self._write(sim_time, events_processed, time.time())

    def _write(
        self, sim_time: float, events_processed: int, now_wall: float
    ) -> None:
        elapsed = now_wall - self._started_wall
        counters: Dict[str, float] = {}
        before = self._counters_before
        for name, value in TELEMETRY._counters.items():
            changed = value - before.get(name, 0.0)
            if changed:
                counters[name] = changed
        fraction: Optional[float] = None
        if self.horizon is not None and self.horizon > 0:
            fraction = min(1.0, sim_time / self.horizon)
        doc: Dict[str, Any] = {
            "format": HEARTBEAT_FORMAT,
            "label": self.label,
            "pid": os.getpid(),
            "updated_unix": now_wall,
            "sim_time": sim_time,
            "horizon": self.horizon,
            "fraction": fraction,
            "events_processed": events_processed,
            "events_per_s": events_processed / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
            "peak_rss_kb": peak_rss_kb(),
            "counters": counters,
        }
        _atomic_write_json(self.path, doc)
        self.writes += 1


class ProgressTracker:
    """Runner-side writer of ``<registry>.progress.json``.

    The Runner calls :meth:`begin` before dispatching, :meth:`spec_done`
    from each pool completion callback (these fire on the pool's
    result-handler thread, hence the lock), and :meth:`finish` once the
    sweep completes.  Intermediate writes are rate-limited; ``begin`` /
    ``finish`` always write.
    """

    def __init__(self, path: str, min_interval_s: float = 0.5) -> None:
        self.path = path
        self.min_interval_s = float(min_interval_s)
        self._lock = threading.Lock()
        self._started_wall = time.time()
        self._last_write_wall = 0.0
        self._doc: Dict[str, Any] = {
            "format": PROGRESS_FORMAT,
            "status": "starting",
            "started_unix": self._started_wall,
            "updated_unix": self._started_wall,
            "n_specs": 0,
            "cache_hits": 0,
            "executed": 0,
            "pending": 0,
            "workers": 0,
            "completed": [],
        }

    def begin(self, n_specs: int, cache_hits: int, pending: int, workers: int) -> None:
        with self._lock:
            self._doc.update(
                status="running",
                n_specs=n_specs,
                cache_hits=cache_hits,
                pending=pending,
                workers=workers,
            )
            self._write_locked(force=True)

    def spec_done(self, label: str, elapsed_s: float) -> None:
        with self._lock:
            self._doc["executed"] = int(self._doc["executed"]) + 1
            completed: List[Dict[str, Any]] = self._doc["completed"]
            completed.append({"label": label, "elapsed_s": elapsed_s})
            self._write_locked()

    def finish(self, stats: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self._doc["status"] = "done"
            if stats:
                self._doc["stats"] = stats
            self._write_locked(force=True)

    def fail(self, reason: str) -> None:
        with self._lock:
            self._doc["status"] = "failed"
            self._doc["reason"] = reason
            self._write_locked(force=True)

    def _write_locked(self, force: bool = False) -> None:
        now_wall = time.time()
        if not force and now_wall - self._last_write_wall < self.min_interval_s:
            return
        self._last_write_wall = now_wall
        self._doc["updated_unix"] = now_wall
        self._doc["elapsed_s"] = now_wall - self._started_wall
        _atomic_write_json(self.path, self._doc)


# ----------------------------------------------------------------------
# the `repro watch` read side
# ----------------------------------------------------------------------
def read_progress(path: str) -> Optional[Dict[str, Any]]:
    """The progress document at *path*, or ``None`` if absent/torn.

    Torn or foreign files read as ``None`` rather than raising: a
    watcher polls while another process writes, so transient junk is
    expected and must not kill the watch loop.
    """
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("format") != PROGRESS_FORMAT:
        return None
    return doc


def read_heartbeats(directory: str) -> List[Dict[str, Any]]:
    """Every readable worker heartbeat under *directory*, label-sorted."""
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    beats: List[Dict[str, Any]] = []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict) and doc.get("format") == HEARTBEAT_FORMAT:
            beats.append(doc)
    beats.sort(key=lambda doc: str(doc.get("label", "")))
    return beats


def merge_heartbeats(beats: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold worker heartbeats into one fleet view.

    The PR 5 merge algebra applied to heartbeat fields: events and
    counters *sum* across workers, ``peak_rss_kb`` takes the *max*
    (per-process high-water marks don't add), rates sum (workers run
    concurrently), and the fleet fraction is the mean of the workers'
    horizon fractions.
    """
    merged: Dict[str, Any] = {
        "workers": len(beats),
        "events_processed": 0,
        "events_per_s": 0.0,
        "peak_rss_kb": 0,
        "counters": {},
        "fraction": None,
    }
    fractions: List[float] = []
    counters: Dict[str, float] = merged["counters"]
    for doc in beats:
        merged["events_processed"] += int(doc.get("events_processed", 0))
        merged["events_per_s"] += float(doc.get("events_per_s", 0.0))
        merged["peak_rss_kb"] = max(
            merged["peak_rss_kb"], int(doc.get("peak_rss_kb", 0))
        )
        for name, value in (doc.get("counters") or {}).items():
            counters[name] = counters.get(name, 0.0) + value
        fraction = doc.get("fraction")
        if fraction is not None:
            fractions.append(float(fraction))
    if fractions:
        merged["fraction"] = sum(fractions) / len(fractions)
    return merged


def _bar(fraction: Optional[float], width: int = 30) -> str:
    if fraction is None:
        return "-" * width
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def render_watch(
    progress: Optional[Dict[str, Any]],
    beats: List[Dict[str, Any]],
    now_wall: Optional[float] = None,
) -> List[str]:
    """The ``repro watch`` screen as lines of text."""
    lines: List[str] = []
    if progress is None and not beats:
        return ["(no progress data yet)"]
    if progress is not None:
        n_specs = int(progress.get("n_specs", 0))
        executed = int(progress.get("executed", 0))
        cache_hits = int(progress.get("cache_hits", 0))
        done = executed + cache_hits
        fraction = done / n_specs if n_specs else None
        lines.append(
            "sweep: %s  [%s] %d/%d spec(s)  (%d cached, %d worker(s), %.1fs)"
            % (
                progress.get("status", "?"),
                _bar(fraction),
                done,
                n_specs,
                cache_hits,
                int(progress.get("workers", 0)),
                float(progress.get("elapsed_s", 0.0)),
            )
        )
        completed = progress.get("completed") or []
        for record in completed[-5:]:
            lines.append(
                "  done: %-40s %8.2fs"
                % (record.get("label", "?"), float(record.get("elapsed_s", 0.0)))
            )
    if beats:
        fleet = merge_heartbeats(beats)
        lines.append(
            "shards: %d live  [%s]  %s events  %.0f events/s  peak RSS %d KB"
            % (
                fleet["workers"],
                _bar(fleet["fraction"]),
                "{:,}".format(fleet["events_processed"]),
                fleet["events_per_s"],
                fleet["peak_rss_kb"],
            )
        )
        if now_wall is None:
            now_wall = time.time()
        for doc in beats:
            age = max(0.0, now_wall - float(doc.get("updated_unix", now_wall)))
            fraction = doc.get("fraction")
            lines.append(
                "  %-44s [%s] t=%8.1f  %10s ev  %8.0f ev/s  %4.0fs ago"
                % (
                    str(doc.get("label", "?"))[:44],
                    _bar(fraction, width=16),
                    float(doc.get("sim_time", 0.0)),
                    "{:,}".format(int(doc.get("events_processed", 0))),
                    float(doc.get("events_per_s", 0.0)),
                    age,
                )
            )
    return lines
