"""Structured event tracing for the simulation.

Every instrumented site in the stack does::

    tracer = env.tracer
    if tracer.enabled:
        tracer.emit(env.now, "msg_send", node_id, kind="poll", ...)

so the *disabled* path costs one attribute read and one branch -- no
event object, no dict, no string formatting.  The default tracer on
every :class:`~repro.sim.engine.Environment` is :data:`NULL_TRACER`
(``enabled`` is ``False``); experiments that want a trace pass a
:class:`RecordingTracer` when building the deployment.

Tracing is purely observational: a tracer never schedules events,
touches RNG streams, or mutates simulation state, so enabling it cannot
change any simulated outcome.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, TextIO

__all__ = ["TraceEvent", "Tracer", "RecordingTracer", "NULL_TRACER", "EVENT_KINDS"]

#: Every event kind the instrumented stack emits, with meaning.
EVENT_KINDS = {
    # network fabric
    "msg_send": "bytes left the sender (reconciles 1:1 with the TrafficLedger)",
    "msg_recv": "message delivered into the receiver's inbox",
    "msg_drop": "message dropped (detail.reason: sender_down / receiver_down)",
    "msg_timeout": "a request's reply window elapsed without a response",
    # node lifecycle (failure injection)
    "node_down": "node went down (first overlapping absence began)",
    "node_up": "node came back up (last overlapping absence ended)",
    # cache / consistency
    "cache_store": "a content body landed in a server cache",
    "cache_invalidate": "an invalidation notice marked a cache entry stale",
    "cache_hit": "lazy-TTL serve path found the entry fresh",
    "cache_expired": "lazy-TTL serve path found the entry expired",
    "poll_round": "one TTL poll round finished (detail: got_update, timed_out)",
    "fetch_round": "an invalidation-triggered recovery fetch finished",
    "push_relay": "a tree node relayed a fresh pushed body to its children",
    "mode_switch": "self-adaptive policy switched mode (detail.mode)",
    # provider / users
    "content_update": "the provider applied a new content version",
    "visit": "an end user observed a version (detail: version, server)",
    "visit_timeout": "an end-user visit timed out (server down/unreachable)",
}


class TraceEvent(NamedTuple):
    """One structured trace record."""

    time: float
    kind: str
    node: str
    detail: Dict[str, Any]

    def to_json(self) -> str:
        """One compact JSON object (the ``repro trace`` JSONL row)."""
        row = {"t": self.time, "kind": self.kind, "node": self.node}
        row.update(self.detail)
        return json.dumps(row, sort_keys=True, separators=(",", ":"))


class Tracer:
    """The no-op tracer: every :class:`Environment` has one by default.

    ``enabled`` is a class attribute so the hot-path guard
    (``if tracer.enabled:``) costs a plain attribute load.
    """

    __slots__ = ()
    enabled = False

    def emit(self, time: float, kind: str, node: str, **detail: Any) -> None:
        """Record one event (no-op here)."""

    def events(self, **filters: Any) -> List[TraceEvent]:
        return []


#: The shared disabled tracer (stateless, safe to share globally).
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Records every emitted event in memory, with filtered read-out."""

    __slots__ = ("_events",)
    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, time: float, kind: str, node: str, **detail: Any) -> None:
        self._events.append(TraceEvent(time, kind, node, detail))

    # ------------------------------------------------------------------
    def events(
        self,
        node: Optional[str] = None,
        kinds: Optional[Iterable[str]] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Events filtered by node id, kind set and time window.

        ``since`` is inclusive, ``until`` exclusive; either may be
        ``None`` (unbounded).
        """
        wanted = frozenset(kinds) if kinds is not None else None
        selected = []
        for event in self._events:
            if node is not None and event.node != node:
                continue
            if wanted is not None and event.kind not in wanted:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time >= until:
                continue
            selected.append(event)
        return selected

    def count(self, kind: str, **filters: Any) -> int:
        """Number of recorded events of *kind* (after filters)."""
        return len(self.events(kinds=(kind,), **filters))

    def kind_counts(self) -> Dict[str, int]:
        """Event count per kind over the whole trace."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def dump_jsonl(
        self,
        stream: TextIO,
        limit: Optional[int] = None,
        **filters: Any,
    ) -> int:
        """Write filtered events as JSON Lines; returns rows written."""
        written = 0
        for event in self.events(**filters):
            if limit is not None and written >= limit:
                break
            stream.write(event.to_json())
            stream.write("\n")
            written += 1
        return written
