"""Process-wide harness telemetry: metrics registry + span profiler.

Everything else in :mod:`repro.obs` watches the *simulated* CDN; this
module watches the *harness itself* -- where wall-clock time, memory and
registry churn go while the reproduction machinery runs.  It is the one
deliberate exception to lint rule REP002 (no wall-clock reads): harness
telemetry legitimately reads wall clocks, and the exemption is scoped to
exactly this module in :data:`repro.lint.exemptions.EXEMPTIONS`.

Three instrument families, all held in one process-wide
:class:`MetricsRegistry` (:data:`TELEMETRY`):

- **counters** -- monotonically increasing totals (``registry.cache_hits``,
  ``fabric.messages_sent``); merged across workers by *summing*;
- **gauges** -- last-written values (``runner.workers``); merged by
  *last write wins*;
- **histograms** -- fixed-bucket-schema distributions
  (``spec.elapsed_s``); merged *bucket-wise* (schemas must match).

Plus the **span profiler**: ``with span("phase"):`` context managers
instrument harness phases (engine hot loop, registry load/save, testbed
build, each Section 3/4/5 driver).  Spans aggregate per name into
``count`` / ``cum_s`` (wall time inside the span, recursion counted
once) / ``self_s`` (cum minus time spent in child spans).

Telemetry is *observational only*: nothing here touches the simulation
kernel, RNG streams, or any simulated outcome, so runs are bit-identical
in every :class:`~repro.experiments.result.FigureResult` metric with
telemetry on or off (``tests/test_telemetry.py`` proves it).  Disable
with ``REPRO_TELEMETRY=0``.

Cross-process flow: each parallel-Runner worker captures a *delta
snapshot* around its deployment (:meth:`MetricsRegistry.snapshot` /
:func:`delta_snapshots`), the Runner merges the deltas into a run-level
rollup (:func:`merge_snapshots`), and the rollup is appended to a
``telemetry.json`` artifact next to the run registry
(:func:`append_run_entry`).  ``repro metrics`` and ``repro profile``
read that artifact back.
"""

from __future__ import annotations

import functools
import json
import os
import sys
import tempfile
import time
from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "TELEMETRY",
    "TELEMETRY_ENV",
    "SNAPSHOT_FORMAT",
    "ARTIFACT_FORMAT",
    "BUCKETS_SECONDS",
    "BUCKETS_COUNT",
    "Histogram",
    "MetricsRegistry",
    "span",
    "profiled",
    "telemetry_enabled",
    "peak_rss_kb",
    "empty_snapshot",
    "merge_snapshots",
    "delta_snapshots",
    "prometheus_exposition",
    "format_span_table",
    "span_total_s",
    "default_artifact_path",
    "load_artifact",
    "append_run_entry",
    "merged_rollup",
]

#: Environment variable disabling telemetry (``0`` / ``false`` / ``off``).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Version tag of the snapshot dict shape.
SNAPSHOT_FORMAT = 1

#: Version tag of the ``telemetry.json`` artifact shape.
ARTIFACT_FORMAT = 1

#: Fixed bucket schema for second-valued histograms (upper edges; the
#: implicit final bucket collects everything at or above the last edge).
BUCKETS_SECONDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Fixed bucket schema for count-valued histograms.
BUCKETS_COUNT: Tuple[float, ...] = (1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6)

_F = TypeVar("_F", bound=Callable[..., Any])


def telemetry_enabled() -> bool:
    """The ``REPRO_TELEMETRY`` default (unset means enabled)."""
    return os.environ.get(TELEMETRY_ENV, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss units differ by platform: Linux reports KiB, macOS
    # reports bytes.  ``sys.platform`` (not ``os.uname()``) so the
    # branch is testable by monkeypatching and works where uname is
    # unavailable.
    if sys.platform == "darwin":
        usage //= 1024
    return int(usage)


class Histogram:
    """Fixed-bucket histogram; ``counts`` has ``len(edges) + 1`` slots
    (the last collects values at or above the final edge)."""

    __slots__ = ("edges", "counts", "total", "sum")

    def __init__(self, edges: Sequence[float]) -> None:
        self.edges: Tuple[float, ...] = tuple(float(edge) for edge in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """One process's telemetry state (see the module docstring).

    All methods are no-ops when ``enabled`` is ``False``, so flipping
    telemetry off removes every cost except one attribute read per
    instrumented site.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        #: Explicit override (constructor argument or later assignment);
        #: ``None`` defers to the live ``REPRO_TELEMETRY`` value so the
        #: process-wide singleton honours env changes made after import
        #: (e.g. ``monkeypatch.setenv`` in tests).
        self._enabled_override: Optional[bool] = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: name -> [count, cum_s, self_s]
        self._spans: Dict[str, List[float]] = {}
        #: Active-span stack: [name, start_s, child_s] frames.
        self._stack: List[List[Any]] = []
        #: name -> live nesting depth (recursion guard for cum_s).
        self._active: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """Live telemetry switch: the explicit override when one was
        set, otherwise the current ``REPRO_TELEMETRY`` value."""
        override = self._enabled_override
        if override is not None:
            return override
        return telemetry_enabled()

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled_override = value

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* to counter *name* (merge across workers: sum)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* (merge across workers: last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, edges: Sequence[float] = BUCKETS_SECONDS
    ) -> None:
        """Record *value* into histogram *name* (merge: bucket-wise)."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(edges)
        histogram.observe(value)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Profile the enclosed block as one execution of span *name*."""
        if not self.enabled:
            yield
            return
        frame: List[Any] = [name, time.perf_counter(), 0.0]
        self._stack.append(frame)
        self._active[name] = self._active.get(name, 0) + 1
        try:
            yield
        finally:
            elapsed = time.perf_counter() - frame[1]
            self._stack.pop()
            depth = self._active[name] - 1
            if depth:
                self._active[name] = depth
            else:
                del self._active[name]
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = [0.0, 0.0, 0.0]
            stats[0] += 1
            if not depth:  # recursion counts its wall time once
                stats[1] += elapsed
            stats[2] += elapsed - frame[2]
            if self._stack:
                self._stack[-1][2] += elapsed

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe copy of everything recorded so far (open spans are
        excluded; they land in the snapshot taken after they close)."""
        return {
            "format": SNAPSHOT_FORMAT,
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self._histograms.items()
            },
            "spans": {
                name: {"count": int(stats[0]), "cum_s": stats[1], "self_s": stats[2]}
                for name, stats in self._spans.items()
            },
            "peak_rss_kb": peak_rss_kb(),
        }

    def delta_since(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """What happened between *before* (an earlier :meth:`snapshot`)
        and now -- the per-worker unit the Runner rolls up."""
        return delta_snapshots(before, self.snapshot())

    def reset(self) -> None:
        """Drop all recorded data (open span frames survive)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()


#: The process-wide registry every instrumented site records into.
TELEMETRY = MetricsRegistry()


def span(name: str) -> Any:
    """``with span("phase"):`` against the process-wide registry."""
    return TELEMETRY.span(name)


def profiled(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`span` for whole driver functions."""

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with TELEMETRY.span(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


# ----------------------------------------------------------------------
# snapshot algebra (plain dicts so they cross process boundaries)
# ----------------------------------------------------------------------
def empty_snapshot() -> Dict[str, Any]:
    """The identity element of :func:`merge_snapshots`."""
    return {
        "format": SNAPSHOT_FORMAT,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": {},
        "peak_rss_kb": 0,
    }


def merge_snapshots(into: Dict[str, Any], other: Dict[str, Any]) -> Dict[str, Any]:
    """Merge *other* into *into* (mutated and returned).

    Counter-sum, gauge-last, histogram bucket-merge (bucket schemas must
    match), span-sum; ``peak_rss_kb`` merges by max (a per-process
    high-water mark, not a sum).
    """
    counters = into.setdefault("counters", {})
    for name, value in other.get("counters", {}).items():
        counters[name] = counters.get(name, 0.0) + value
    into.setdefault("gauges", {}).update(other.get("gauges", {}))
    histograms = into.setdefault("histograms", {})
    for name, data in other.get("histograms", {}).items():
        mine = histograms.get(name)
        if mine is None:
            histograms[name] = {
                "edges": list(data["edges"]),
                "counts": list(data["counts"]),
                "total": data["total"],
                "sum": data["sum"],
            }
            continue
        if list(mine["edges"]) != list(data["edges"]):
            raise ValueError(
                "histogram %r bucket schemas differ: %r vs %r"
                % (name, mine["edges"], data["edges"])
            )
        mine["counts"] = [a + b for a, b in zip(mine["counts"], data["counts"])]
        mine["total"] += data["total"]
        mine["sum"] += data["sum"]
    spans = into.setdefault("spans", {})
    for name, data in other.get("spans", {}).items():
        mine = spans.get(name)
        if mine is None:
            spans[name] = dict(data)
        else:
            mine["count"] += data["count"]
            mine["cum_s"] += data["cum_s"]
            mine["self_s"] += data["self_s"]
    into["peak_rss_kb"] = max(
        into.get("peak_rss_kb", 0), other.get("peak_rss_kb", 0)
    )
    into.setdefault("format", SNAPSHOT_FORMAT)
    return into


def delta_snapshots(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """``after - before`` for every summed family (gauges and peak RSS
    take the *after* value); zero entries are dropped."""
    delta = empty_snapshot()
    for name, value in after.get("counters", {}).items():
        changed = value - before.get("counters", {}).get(name, 0.0)
        if changed:
            delta["counters"][name] = changed
    delta["gauges"] = dict(after.get("gauges", {}))
    before_hists = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        base = before_hists.get(name)
        if base is None:
            delta["histograms"][name] = {
                "edges": list(data["edges"]),
                "counts": list(data["counts"]),
                "total": data["total"],
                "sum": data["sum"],
            }
            continue
        counts = [a - b for a, b in zip(data["counts"], base["counts"])]
        if any(counts):
            delta["histograms"][name] = {
                "edges": list(data["edges"]),
                "counts": counts,
                "total": data["total"] - base["total"],
                "sum": data["sum"] - base["sum"],
            }
    before_spans = before.get("spans", {})
    for name, data in after.get("spans", {}).items():
        base = before_spans.get(name, {"count": 0, "cum_s": 0.0, "self_s": 0.0})
        if data["count"] != base["count"]:
            delta["spans"][name] = {
                "count": data["count"] - base["count"],
                "cum_s": data["cum_s"] - base["cum_s"],
                "self_s": data["self_s"] - base["self_s"],
            }
    delta["peak_rss_kb"] = after.get("peak_rss_kb", 0)
    return delta


# ----------------------------------------------------------------------
# renderings
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def prometheus_exposition(snapshot: Dict[str, Any]) -> str:
    """The snapshot as Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = "repro_%s_total" % _prom_name(name)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %g" % (metric, snapshot["counters"][name]))
    for name in sorted(snapshot.get("gauges", {})):
        metric = "repro_%s" % _prom_name(name)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %g" % (metric, snapshot["gauges"][name]))
    rss = snapshot.get("peak_rss_kb", 0)
    lines.append("# TYPE repro_peak_rss_kb gauge")
    lines.append("repro_peak_rss_kb %g" % rss)
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = "repro_%s" % _prom_name(name)
        lines.append("# TYPE %s histogram" % metric)
        cumulative = 0
        for edge, bucket in zip(data["edges"], data["counts"]):
            cumulative += bucket
            lines.append('%s_bucket{le="%g"} %d' % (metric, edge, cumulative))
        lines.append('%s_bucket{le="+Inf"} %d' % (metric, data["total"]))
        lines.append("%s_sum %g" % (metric, data["sum"]))
        lines.append("%s_count %d" % (metric, data["total"]))
    for name in sorted(snapshot.get("spans", {})):
        data = snapshot["spans"][name]
        label = name.replace("\\", "\\\\").replace('"', '\\"')
        lines.append('repro_span_seconds{span="%s",agg="cum"} %g' % (label, data["cum_s"]))
        lines.append('repro_span_seconds{span="%s",agg="self"} %g' % (label, data["self_s"]))
        lines.append('repro_span_count{span="%s"} %d' % (label, data["count"]))
    return "\n".join(lines) + "\n"


def span_total_s(snapshot: Dict[str, Any]) -> float:
    """Total profiled wall time: the sum of every span's *self* time
    (self times tile the profiled wall clock without double counting)."""
    return sum(data["self_s"] for data in snapshot.get("spans", {}).values())


def format_span_table(
    snapshot: Dict[str, Any],
    top: Optional[int] = None,
    sort: str = "cum",
) -> List[str]:
    """``repro profile``'s top-N span table as lines.

    ``sort`` is ``"cum"``, ``"self"`` or ``"count"``; the ``%`` column
    is each span's share of the total *self* time.
    """
    spans = snapshot.get("spans", {})
    key = {"cum": "cum_s", "self": "self_s", "count": "count"}[sort]
    ranked = sorted(spans.items(), key=lambda item: item[1][key], reverse=True)
    if top is not None:
        ranked = ranked[:top]
    total = span_total_s(snapshot)
    lines = [
        "%-38s %8s %12s %12s %7s" % ("span", "count", "self (s)", "cum (s)", "self%"),
    ]
    for name, data in ranked:
        share = data["self_s"] / total if total > 0 else 0.0
        lines.append(
            "%-38s %8d %12.4f %12.4f %6.1f%%"
            % (name, data["count"], data["self_s"], data["cum_s"], 100.0 * share)
        )
    lines.append(
        "%-38s %8s %12.4f %12s %6.1f%%" % ("total (self)", "", total, "", 100.0)
    )
    return lines


# ----------------------------------------------------------------------
# telemetry.json artifact (lives next to the run registry)
# ----------------------------------------------------------------------
def default_artifact_path(registry_path: str) -> str:
    """``runs.json`` -> ``runs.telemetry.json`` (next to the registry)."""
    base = registry_path
    if base.endswith(".json"):
        base = base[: -len(".json")]
    return base + ".telemetry.json"


def load_artifact(path: str) -> Dict[str, Any]:
    """The artifact at *path* (``{"format": 1, "runs": []}`` if absent).

    Raises ``ValueError`` for files that exist but are not a telemetry
    artifact, so callers can distinguish "no telemetry yet" from "wrong
    file".
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {"format": ARTIFACT_FORMAT, "runs": []}
    except (OSError, ValueError) as error:
        raise ValueError("telemetry artifact %s is unreadable: %s" % (path, error))
    if (
        not isinstance(data, dict)
        or data.get("format") != ARTIFACT_FORMAT
        or not isinstance(data.get("runs"), list)
    ):
        raise ValueError("telemetry artifact %s has an unexpected shape" % path)
    return data


def append_run_entry(
    path: str, entry: Dict[str, Any], max_entries: int = 500
) -> int:
    """Append one run entry to the artifact at *path* (atomic replace).

    Entries beyond *max_entries* age out oldest-first.  Returns the
    number of entries now stored.  An unreadable existing file is left
    in place and the artifact restarts empty (telemetry must never turn
    a successful run into a failure).
    """
    try:
        artifact = load_artifact(path)
    except ValueError:
        artifact = {"format": ARTIFACT_FORMAT, "runs": []}
    runs = artifact["runs"]
    runs.append(entry)
    del runs[:-max_entries]
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(artifact, handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):  # pragma: no cover - error path
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    return len(runs)


def merged_rollup(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """Every run entry's rollup merged into one snapshot."""
    merged = empty_snapshot()
    for entry in artifact.get("runs", []):
        rollup = entry.get("rollup")
        if rollup:
            merge_snapshots(merged, rollup)
    return merged
