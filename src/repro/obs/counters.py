"""Always-on per-layer counters.

:class:`FabricCounters` is owned by the
:class:`~repro.network.link.NetworkFabric` and incremented inline on the
message path: plain attribute adds, no branching on configuration, so a
run costs the same whether or not anyone reads the counters.  Being
independent of the (optional) tracer keeps
:class:`~repro.experiments.testbed.DeploymentMetrics` bit-identical
with tracing enabled or disabled.

The counters deliberately measure the paper's cause layers:

- ``queueing_s`` -- output-port wait + per-message overhead +
  transmission time at the sender (Section 3.4.4's provider-bandwidth
  bottleneck);
- ``propagation_s`` -- distance-driven one-way delay (Section 3.4.2);
- ``isp_penalty_s`` / ``isp_crossing_*`` -- inter-ISP handoffs
  (Section 3.4.3);
- drops by reason -- server absences (Section 3.4.5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["FabricCounters", "staleness_histogram", "STALENESS_BIN_EDGES_S"]

#: Upper edges (seconds) of the per-server staleness histogram bins; the
#: final bin collects everything at or above the last edge.
STALENESS_BIN_EDGES_S = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


class FabricCounters:
    """Message-path totals for one simulation run."""

    __slots__ = (
        "messages_sent",
        "messages_delivered",
        "dropped_sender_down",
        "dropped_receiver_down",
        "bytes_kb",
        "isp_crossing_messages",
        "isp_crossing_kb",
        "isp_penalty_s",
        "propagation_s",
        "queueing_s",
        "link_bytes_kb",
    )

    def __init__(self) -> None:
        #: Messages whose bytes left the sender (matches the ledger).
        self.messages_sent = 0
        #: Messages that reached the receiver's inbox.
        self.messages_delivered = 0
        self.dropped_sender_down = 0
        self.dropped_receiver_down = 0
        self.bytes_kb = 0.0
        #: Traffic that crossed an ISP boundary (Section 3.4.3).
        self.isp_crossing_messages = 0
        self.isp_crossing_kb = 0.0
        #: Total extra one-way delay charged for inter-ISP handoffs.
        self.isp_penalty_s = 0.0
        #: Total distance/jitter-driven one-way delay (excl. ISP penalty).
        self.propagation_s = 0.0
        #: Total sender-side time: port queueing + overhead + transmission.
        self.queueing_s = 0.0
        #: KB per directed link, keyed ``"src->dst"``.
        self.link_bytes_kb: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def dropped_messages(self) -> int:
        return self.dropped_sender_down + self.dropped_receiver_down

    def record_sent(self, src_id: str, dst_id: str, size_kb: float) -> None:
        """Bytes left *src_id* towards *dst_id*."""
        self.messages_sent += 1
        self.bytes_kb += size_kb
        key = "%s->%s" % (src_id, dst_id)
        self.link_bytes_kb[key] = self.link_bytes_kb.get(key, 0.0) + size_kb

    def record_propagation(
        self, base_s: float, penalty_s: float, size_kb: float
    ) -> None:
        """One-way delay components of one propagating message."""
        self.propagation_s += base_s
        if penalty_s > 0.0:
            self.isp_penalty_s += penalty_s
            self.isp_crossing_messages += 1
            self.isp_crossing_kb += size_kb

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (used by ``repro trace`` summaries)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "dropped_sender_down": self.dropped_sender_down,
            "dropped_receiver_down": self.dropped_receiver_down,
            "bytes_kb": self.bytes_kb,
            "isp_crossing_messages": self.isp_crossing_messages,
            "isp_crossing_kb": self.isp_crossing_kb,
            "isp_penalty_s": self.isp_penalty_s,
            "propagation_s": self.propagation_s,
            "queueing_s": self.queueing_s,
            "n_links": len(self.link_bytes_kb),
        }


def staleness_histogram(
    lags_s: Sequence[float],
    edges_s: Sequence[float] = STALENESS_BIN_EDGES_S,
) -> Tuple[List[float], List[int]]:
    """Histogram server staleness values into fixed, deterministic bins.

    Returns ``(edges, counts)`` where ``counts`` has one more entry than
    ``edges``: ``counts[i]`` holds values below ``edges[i]`` (and above
    the previous edge); the final count collects values ``>= edges[-1]``.
    Pure Python on purpose -- identical results on every platform.
    """
    edges = [float(edge) for edge in edges_s]
    counts = [0] * (len(edges) + 1)
    for lag in lags_s:
        for index, edge in enumerate(edges):
            if lag < edge:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return edges, counts
