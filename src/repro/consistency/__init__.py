"""Update methods (TTL / Push / Invalidation / self-adaptive) and update
infrastructures (unicast / multicast tree / broadcast) plus the
Hilbert-curve clustering used by the hybrid infrastructure."""

from .adaptive import AdaptiveTTLPolicy, SelfAdaptivePolicy
from .base import Infrastructure, ServerPolicy
from .broadcast import BroadcastInfrastructure
from .hilbert import (
    DEFAULT_ORDER,
    cluster_by_hilbert,
    hilbert_number,
    hilbert_to_xy,
    xy_to_hilbert,
)
from .invalidation import InvalidationPolicy
from .maintenance import TreeMaintainer
from .multicast import MulticastTreeInfrastructure
from .push import PushPolicy
from .registry import (
    INFRASTRUCTURE_REGISTRY,
    METHOD_REGISTRY,
    InfrastructureEntry,
    MethodEntry,
    infrastructure_choices,
    infrastructure_names,
    method_choices,
    method_names,
    resolve_infrastructure,
    resolve_method,
)
from .ttl import TTLPolicy
from .unicast import UnicastInfrastructure

__all__ = [
    "MethodEntry",
    "InfrastructureEntry",
    "METHOD_REGISTRY",
    "INFRASTRUCTURE_REGISTRY",
    "method_names",
    "method_choices",
    "infrastructure_names",
    "infrastructure_choices",
    "resolve_method",
    "resolve_infrastructure",
    "ServerPolicy",
    "Infrastructure",
    "TTLPolicy",
    "PushPolicy",
    "InvalidationPolicy",
    "SelfAdaptivePolicy",
    "AdaptiveTTLPolicy",
    "UnicastInfrastructure",
    "MulticastTreeInfrastructure",
    "TreeMaintainer",
    "BroadcastInfrastructure",
    "xy_to_hilbert",
    "hilbert_to_xy",
    "hilbert_number",
    "cluster_by_hilbert",
    "DEFAULT_ORDER",
]
