"""Update methods (TTL / Push / Invalidation / self-adaptive) and update
infrastructures (unicast / multicast tree / broadcast) plus the
Hilbert-curve clustering used by the hybrid infrastructure."""

from .adaptive import AdaptiveTTLPolicy, SelfAdaptivePolicy
from .base import Infrastructure, ServerPolicy
from .broadcast import BroadcastInfrastructure
from .hilbert import (
    DEFAULT_ORDER,
    cluster_by_hilbert,
    hilbert_number,
    hilbert_to_xy,
    xy_to_hilbert,
)
from .invalidation import InvalidationPolicy
from .maintenance import TreeMaintainer
from .multicast import MulticastTreeInfrastructure
from .push import PushPolicy
from .ttl import TTLPolicy
from .unicast import UnicastInfrastructure

__all__ = [
    "ServerPolicy",
    "Infrastructure",
    "TTLPolicy",
    "PushPolicy",
    "InvalidationPolicy",
    "SelfAdaptivePolicy",
    "AdaptiveTTLPolicy",
    "UnicastInfrastructure",
    "MulticastTreeInfrastructure",
    "TreeMaintainer",
    "BroadcastInfrastructure",
    "xy_to_hilbert",
    "hilbert_to_xy",
    "hilbert_number",
    "cluster_by_hilbert",
    "DEFAULT_ORDER",
]
