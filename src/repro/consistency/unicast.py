"""Unicast (star) infrastructure.

The provider talks to every content server directly -- the
infrastructure the paper's Section 3 measurement shows the real CDN
uses.  It guarantees one-hop dissemination but concentrates all update
load on the provider's uplink.
"""

from __future__ import annotations

from typing import List

from .base import Infrastructure

__all__ = ["UnicastInfrastructure"]


class UnicastInfrastructure(Infrastructure):
    """Provider directly connected to all servers."""

    name = "unicast"

    def wire(self, provider, servers: List) -> None:
        provider.children = [server.node for server in servers]
        for server in servers:
            server.upstream = provider.node
            server.children = []

    def depth_of(self, server) -> int:
        return 1
