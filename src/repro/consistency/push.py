"""Push-based consistency maintenance.

The provider (or tree parent) transmits the new content body to every
downstream replica immediately after each update.  Replicas are passive;
in a multicast tree each replica relays fresh bodies to its children.
"""

from __future__ import annotations

from ..network.message import Message
from .base import ServerPolicy

__all__ = ["PushPolicy"]


class PushPolicy(ServerPolicy):
    """Apply pushed bodies; optionally relay them downstream."""

    method_name = "push"

    def __init__(self, forward: bool = True) -> None:
        super().__init__()
        #: Relay fresh bodies to ``server.children`` (multicast mode);
        #: with no children this is a no-op, so it is safe to leave on.
        self.forward = forward

    def on_push(self, message: Message) -> None:
        newer = self.server.apply_version(message.version)
        if newer and self.forward:
            server = self.server
            tracer = server.env.tracer
            if tracer.enabled and server.children:
                tracer.emit(
                    server.env.now, "push_relay", server.node.node_id,
                    version=message.version, children=len(server.children),
                )
            server.push_children(message.version)
