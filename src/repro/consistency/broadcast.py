"""Broadcast (flooding) infrastructure.

The paper discusses broadcast ([10]) as the third dissemination
architecture but excludes it from the Section 4 evaluation because it
"fails to be sufficiently scalable ... due to a large number of
redundant messages".  We implement it anyway so the redundancy claim can
be measured (see the ablation benchmarks): the provider seeds every
server it knows, and each server floods fresh bodies/notices to its
k nearest neighbours; duplicate deliveries are suppressed by the
version check but still traverse (and load) the network.
"""

from __future__ import annotations

from typing import Dict, List

from ..network.link import NetworkFabric
from .base import Infrastructure

__all__ = ["BroadcastInfrastructure"]


class BroadcastInfrastructure(Infrastructure):
    """Provider seeds a subset; servers flood to k nearest neighbours."""

    name = "broadcast"

    def __init__(self, fabric: NetworkFabric, neighbours: int = 4, seeds: int = 1) -> None:
        if neighbours < 1:
            raise ValueError("neighbours must be >= 1")
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        self.fabric = fabric
        self.neighbours = neighbours
        self.seeds = seeds
        self._depths: Dict[str, int] = {}

    def wire(self, provider, servers: List) -> None:
        if not servers:
            provider.children = []
            return
        # Provider seeds the `seeds` servers nearest to it.
        ordered = sorted(
            servers, key=lambda s: self.fabric.min_latency_s(provider.node, s.node)
        )
        seeded = ordered[: self.seeds]
        provider.children = [s.node for s in seeded]

        # Every server floods to its k nearest neighbours (a geometric
        # graph on latency), augmented with a latency-sorted ring so the
        # flood graph is always strongly connected even when geographic
        # clusters sit far apart.
        ring = {
            ordered[i].node.node_id: ordered[(i + 1) % len(ordered)]
            for i in range(len(ordered))
        }
        for server in servers:
            others = sorted(
                (s for s in servers if s is not server),
                key=lambda s: self.fabric.min_latency_s(server.node, s.node),
            )
            neighbours = others[: self.neighbours]
            successor = ring[server.node.node_id]
            if successor is not server and successor not in neighbours:
                neighbours.append(successor)
            server.children = [s.node for s in neighbours]
            server.upstream = provider.node  # polls/fetches still go to origin

        self._compute_depths(provider, servers, seeded)

    def _compute_depths(self, provider, servers: List, seeded: List) -> None:
        """BFS hop counts through the flooding graph (for diagnostics)."""
        by_node_id = {s.node.node_id: s for s in servers}
        self._depths = {}
        frontier = [(s, 1) for s in seeded]
        while frontier:
            server, depth = frontier.pop(0)
            node_id = server.node.node_id
            if node_id in self._depths:
                continue
            self._depths[node_id] = depth
            for child_node in server.children:
                child = by_node_id.get(child_node.node_id)
                if child is not None and child.node.node_id not in self._depths:
                    frontier.append((child, depth + 1))

    def depth_of(self, server) -> int:
        return self._depths.get(server.node.node_id, -1)

    def reachable_fraction(self, servers: List) -> float:
        """Fraction of servers the flood can reach (graph connectivity)."""
        if not servers:
            return 1.0
        return len(self._depths) / len(servers)
