"""Proximity-aware d-ary multicast tree.

Section 4 of the paper: "the provider is the tree root and
geographically close nodes (measured by inter-ping latency) are
connected to each other to form a binary tree".  The builder processes
servers in order of increasing latency to the root and attaches each to
the already-attached node (root or server) that is closest to it and
still has a free child slot -- a greedy proximity-aware construction in
the spirit of [17], [18], [39].

The tree also supports failure repair: when a node goes down its
children re-attach to the nearest live attachable node (costing
TREE_MAINTENANCE messages), reproducing the maintenance-overhead
argument against multicast in Section 1.
"""

from __future__ import annotations

from typing import Dict, List

from ..network.link import NetworkFabric
from ..network.message import MessageKind
from .base import Infrastructure

__all__ = ["MulticastTreeInfrastructure"]


class MulticastTreeInfrastructure(Infrastructure):
    """A d-ary tree over the servers, rooted at the provider."""

    name = "multicast"

    def __init__(
        self, fabric: NetworkFabric, arity: int = 2, depth_penalty_s: float = 0.005
    ) -> None:
        """``depth_penalty_s`` biases attachment toward shallower
        parents: a candidate's score is its latency plus this penalty
        per tree level.  Without it, proximity-greedy attachment builds
        metro-local chains whose depth ignores the arity entirely; with
        it, depth shrinks as the arity grows ("a larger d leads to a
        smaller depth", Section 4)."""
        if arity < 1:
            raise ValueError("arity must be >= 1")
        if depth_penalty_s < 0:
            raise ValueError("depth_penalty_s must be >= 0")
        self.fabric = fabric
        self.arity = arity
        self.depth_penalty_s = depth_penalty_s
        self._provider = None
        #: server node_id -> parent actor (provider or server)
        self._parent: Dict[str, object] = {}
        #: actor node_id -> list of child server actors
        self._children: Dict[str, List] = {}
        self._servers: List = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def wire(self, provider, servers: List) -> None:
        self._provider = provider
        self._servers = list(servers)
        self._parent.clear()
        self._children.clear()
        provider.children = []
        for server in servers:
            server.children = []

        # Process servers nearest-to-root first so upper tree layers are
        # close to the provider (proximity awareness).
        ordered = sorted(
            servers, key=lambda s: self.fabric.min_latency_s(provider.node, s.node)
        )
        attachable = [provider]
        for server in ordered:
            parent = self._nearest_attachable(server, attachable)
            self._attach(server, parent)
            attachable.append(server)

    def _nearest_attachable(self, server, attachable: List):
        best = None
        best_score = float("inf")
        for candidate in attachable:
            if len(self._children.get(candidate.node.node_id, ())) >= self.arity:
                continue
            score = self.fabric.min_latency_s(
                candidate.node, server.node
            ) + self.depth_penalty_s * self._depth_or_zero(candidate)
            if score < best_score:
                best = candidate
                best_score = score
        if best is None:  # pragma: no cover - cannot happen for arity >= 1
            raise RuntimeError("no attachable node found")
        return best

    def _depth_or_zero(self, actor) -> int:
        if actor is self._provider:
            return 0
        try:
            return self.depth_of(actor)
        except KeyError:  # pragma: no cover - unattached candidate
            return 0

    def _attach(self, server, parent) -> None:
        self._parent[server.node.node_id] = parent
        self._children.setdefault(parent.node.node_id, []).append(server)
        parent.children.append(server.node)
        server.upstream = parent.node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def parent_of(self, server):
        return self._parent.get(server.node.node_id)

    def children_of(self, actor) -> List:
        return list(self._children.get(actor.node.node_id, ()))

    def depth_of(self, server) -> int:
        depth = 0
        current = server
        while True:
            parent = self._parent.get(current.node.node_id)
            if parent is None:
                if current is not self._provider:
                    raise KeyError("%s is not in the tree" % current.node.node_id)
                return depth
            depth += 1
            current = parent

    def max_depth(self) -> int:
        if not self._servers:
            return 0
        return max(self.depth_of(server) for server in self._servers)

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def attach_new(self, server) -> None:
        """Attach a newly joined node (e.g. a promoted HAT supernode):
        nearest live attachable parent, one TREE_MAINTENANCE join
        message charged to the ledger."""
        if server.node.node_id in self._parent:
            raise ValueError("%s is already in the tree" % server.node.node_id)
        attachable = [self._provider] + [
            s for s in self._servers if s.node.is_up and s is not server
        ]
        parent = self._nearest_attachable_live(server, attachable)
        self._servers.append(server)
        self._attach(server, parent)
        server.send(
            MessageKind.TREE_MAINTENANCE, parent.node, server.content.light_size_kb
        )

    # ------------------------------------------------------------------
    # failure repair
    # ------------------------------------------------------------------
    def repair(self, failed) -> int:
        """Re-attach the children of a failed server; returns the number
        of re-attachments performed.

        Each orphan sends a TREE_MAINTENANCE message to its new parent
        (join cost), which the ledger accounts as light traffic.
        """
        failed_id = failed.node.node_id
        orphans = self._children.pop(failed_id, [])
        # Detach the failed node itself from its parent.
        parent = self._parent.pop(failed_id, None)
        if parent is not None:
            siblings = self._children.get(parent.node.node_id, [])
            if failed in siblings:
                siblings.remove(failed)
            if failed.node in parent.children:
                parent.children.remove(failed.node)

        moved = 0
        for orphan in orphans:
            attachable = [self._provider] + [
                s for s in self._servers
                if s is not failed and s is not orphan and s.node.is_up
                and not self._is_descendant(s, orphan)
            ]
            new_parent = self._nearest_attachable_live(orphan, attachable)
            self._attach(orphan, new_parent)
            orphan.send(
                MessageKind.TREE_MAINTENANCE,
                new_parent.node,
                orphan.content.light_size_kb,
            )
            moved += 1
        return moved

    def _is_descendant(self, candidate, ancestor) -> bool:
        current = candidate
        while True:
            parent = self._parent.get(current.node.node_id)
            if parent is None:
                return False
            if parent is ancestor:
                return True
            current = parent

    def _nearest_attachable_live(self, server, attachable: List):
        best = None
        best_score = float("inf")
        for candidate in attachable:
            if len(self._children.get(candidate.node.node_id, ())) >= self.arity:
                continue
            score = self.fabric.min_latency_s(
                candidate.node, server.node
            ) + self.depth_penalty_s * self._depth_or_zero(candidate)
            if score < best_score:
                best = candidate
                best_score = score
        if best is None:
            # Every live node is full: allow overflow at the provider
            # rather than partitioning the overlay.
            return self._provider
        return best
