"""Self-adaptive update method (the paper's Algorithm 1) and the
adaptive-TTL baseline it is compared against.

Algorithm 1 (Section 5.1)::

    Procedure TTL_based_update():
        do { sleep TTL; poll } while an update arrived
        Invalidation_based_update()

    Procedure Invalidation_based_update():
        wait (an invalidation)
        wait (a visit)
        poll update and notify switch Invalidation -> TTL
        TTL_based_update()

During bursts the replica polls on its own TTL phase (cheap, aggregates
updates, desynchronised across replicas -- avoiding Incast); during
silence it sits in Invalidation mode and costs nothing until the
provider's single notice plus the first subsequent visit.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from ..network.message import Message, MessageKind
from ..sim.engine import Event
from ..sim.rng import RandomStream
from .base import ServerPolicy

__all__ = ["SelfAdaptivePolicy", "AdaptiveTTLPolicy"]

MODE_TTL = "ttl"
MODE_INVALIDATION = "invalidation"


class SelfAdaptivePolicy(ServerPolicy):
    """Switch between TTL polling and Invalidation (Algorithm 1)."""

    method_name = "self-adaptive"

    def __init__(
        self,
        ttl_s: float,
        stream: Optional[RandomStream] = None,
        poll_timeout_s: Optional[float] = None,
        fetch_timeout_s: Optional[float] = 60.0,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        super().__init__()
        self.ttl_s = ttl_s
        self.stream = stream
        self.poll_timeout_s = poll_timeout_s if poll_timeout_s is not None else ttl_s
        self.fetch_timeout_s = fetch_timeout_s
        self.mode = MODE_TTL
        self._invalidated_ev: Optional[Event] = None
        self._recovered_ev: Optional[Event] = None
        self._fetch_inflight: Optional[Event] = None
        #: Mode switches performed, for experiments/debugging.
        self.switches_to_invalidation = 0
        self.switches_to_ttl = 0

    # ------------------------------------------------------------------
    def processes(self) -> Iterable[Generator]:
        return [self._control_loop()]

    def _control_loop(self) -> Generator:
        server = self.server
        env = server.env
        if self.stream is not None:
            yield env.timeout(self.stream.uniform(0.0, self.ttl_s))
        while True:
            # --- TTL phase: poll while updates keep arriving ------------
            self.mode = MODE_TTL
            while True:
                yield env.timeout(self.ttl_s)
                got_update = yield from self._poll_once()
                if not got_update:
                    break

            # --- switch to Invalidation --------------------------------
            self.switches_to_invalidation += 1
            self.mode = MODE_INVALIDATION
            if env.tracer.enabled:
                env.tracer.emit(
                    env.now, "mode_switch", server.node.node_id,
                    mode=MODE_INVALIDATION,
                )
            server.send(
                MessageKind.SWITCH_NOTICE,
                server.upstream,
                server.content.light_size_kb,
                version=server.cached_version,
                payload={"mode": "invalidation"},
            )

            # --- wait for an invalidation notice ------------------------
            if not server.is_invalidated:
                self._invalidated_ev = server.env.event()
                yield self._invalidated_ev
                self._invalidated_ev = None

            # --- wait for a visit to complete the recovery fetch --------
            if server.is_invalidated:
                self._recovered_ev = server.env.event()
                yield self._recovered_ev
                self._recovered_ev = None

            # --- back to TTL --------------------------------------------
            self.switches_to_ttl += 1
            if env.tracer.enabled:
                env.tracer.emit(
                    env.now, "mode_switch", server.node.node_id, mode=MODE_TTL
                )
            server.send(
                MessageKind.SWITCH_NOTICE,
                server.upstream,
                server.content.light_size_kb,
                version=server.cached_version,
                payload={"mode": "ttl"},
            )

    def _poll_once(self) -> Generator:
        server = self.server
        response = yield from server.request(
            MessageKind.POLL,
            server.upstream,
            server.content.light_size_kb,
            payload={"have": server.cached_version},
            timeout=self.poll_timeout_s,
        )
        if response is None:
            return False
        if response.kind is MessageKind.POLL_RESPONSE:
            server.apply_version(response.version, ttl=self.ttl_s)
            return True
        return False

    # ------------------------------------------------------------------
    def reannounce(self) -> None:
        """Re-register the current mode with a *new* upstream.

        Needed after failover re-points ``server.upstream``: a member
        sitting in Invalidation mode must tell the replacement source to
        notify it, or it would wait forever on a notice the new source
        does not know to send.
        """
        if self.mode == MODE_INVALIDATION:
            self.server.send(
                MessageKind.SWITCH_NOTICE,
                self.server.upstream,
                self.server.content.light_size_kb,
                version=self.server.cached_version,
                payload={"mode": "invalidation"},
            )

    def on_invalidate(self, message: Message) -> None:
        self.server.mark_invalidated(message.version)
        if self._invalidated_ev is not None and not self._invalidated_ev.triggered:
            self._invalidated_ev.succeed()

    def ensure_fresh(self) -> Generator:
        """Visit-triggered recovery fetch while in Invalidation mode."""
        server = self.server
        if not server.is_invalidated:
            return
        if self._fetch_inflight is not None:
            yield self._fetch_inflight
            return
        self._fetch_inflight = server.env.event()
        try:
            response = yield from server.request(
                MessageKind.FETCH,
                server.upstream,
                server.content.light_size_kb,
                timeout=self.fetch_timeout_s,
            )
            if response is not None:
                server.apply_version(response.version, ttl=self.ttl_s)
                if self._recovered_ev is not None and not self._recovered_ev.triggered:
                    self._recovered_ev.succeed()
        finally:
            inflight, self._fetch_inflight = self._fetch_inflight, None
            inflight.succeed()


class AdaptiveTTLPolicy(ServerPolicy):
    """Adaptive-TTL baseline ([6], [22], [24]; Alex-style backoff).

    The TTL shrinks multiplicatively when a poll finds an update and
    grows when it does not.  The paper argues (Section 5.1) that such
    prediction misfires on irregular update patterns; this policy exists
    so the ablation benchmarks can quantify that claim.
    """

    method_name = "adaptive-ttl"

    def __init__(
        self,
        min_ttl_s: float,
        max_ttl_s: float,
        stream: Optional[RandomStream] = None,
        grow_factor: float = 2.0,
        shrink_factor: float = 0.5,
    ) -> None:
        if not 0 < min_ttl_s <= max_ttl_s:
            raise ValueError("need 0 < min_ttl_s <= max_ttl_s")
        if grow_factor <= 1.0 or not 0.0 < shrink_factor < 1.0:
            raise ValueError("grow_factor > 1 and 0 < shrink_factor < 1 required")
        super().__init__()
        self.min_ttl_s = min_ttl_s
        self.max_ttl_s = max_ttl_s
        self.stream = stream
        self.grow_factor = grow_factor
        self.shrink_factor = shrink_factor
        self.current_ttl_s = min_ttl_s

    def processes(self) -> Iterable[Generator]:
        return [self._poll_loop()]

    def _poll_loop(self) -> Generator:
        server = self.server
        env = server.env
        if self.stream is not None:
            yield env.timeout(self.stream.uniform(0.0, self.min_ttl_s))
        while True:
            yield env.timeout(self.current_ttl_s)
            response = yield from server.request(
                MessageKind.POLL,
                server.upstream,
                server.content.light_size_kb,
                payload={"have": server.cached_version},
                timeout=self.max_ttl_s,
            )
            if response is not None and response.kind is MessageKind.POLL_RESPONSE:
                server.apply_version(response.version, ttl=self.current_ttl_s)
                self.current_ttl_s = max(
                    self.min_ttl_s, self.current_ttl_s * self.shrink_factor
                )
            else:
                self.current_ttl_s = min(
                    self.max_ttl_s, self.current_ttl_s * self.grow_factor
                )
