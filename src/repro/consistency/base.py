"""Interfaces for update methods and update infrastructures.

The paper factors consistency maintenance into two orthogonal choices:

- the *update method* (how a replica learns about updates): TTL, Push,
  server-based Invalidation, or the proposed self-adaptive switch --
  implemented as :class:`ServerPolicy` subclasses attached to servers,
  plus a provider-side hook wired by the experiment;
- the *update infrastructure* (who talks to whom): unicast star,
  broadcast, or a proximity-aware multicast tree -- implemented as
  :class:`Infrastructure` subclasses that wire ``upstream`` / ``children``
  links between actors.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, TYPE_CHECKING

from ..network.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cdn.provider import ProviderActor
    from ..cdn.server import ServerActor

__all__ = ["ServerPolicy", "Infrastructure"]


def _noop() -> Generator:
    """An empty generator (for default no-op ``yield from`` hooks)."""
    return
    yield  # pragma: no cover - makes this a generator function


class ServerPolicy:
    """Server-side half of an update method.

    Subclasses override the hooks they need; the defaults describe a
    purely passive replica (never refreshes, ignores notices).
    """

    #: Human-readable method name ("ttl", "push", ...).
    method_name: str = "base"

    def __init__(self) -> None:
        self.server: Optional["ServerActor"] = None

    def bind(self, server: "ServerActor") -> None:
        """Attach the policy to its server (called by the server ctor)."""
        if self.server is not None:
            raise RuntimeError("policy already bound to %r" % (self.server,))
        self.server = server

    # ------------------------------------------------------------------
    def processes(self) -> Iterable[Generator]:
        """Background processes to start with the server (e.g. poll loops)."""
        return []

    def on_push(self, message: Message) -> None:
        """A pushed content body arrived."""
        # Unexpected for pull-only methods, but harmless: applying a
        # fresher body can never hurt consistency.
        self.server.apply_version(message.version)

    def on_invalidate(self, message: Message) -> None:
        """An invalidation notice arrived."""
        self.server.mark_invalidated(message.version)

    def ensure_fresh(self) -> Generator:
        """Bring the cache to a servable state before answering.

        Used both on the user-serving path and when answering a child's
        poll/fetch (so staleness does not cascade down a tree).
        """
        return _noop()

    def serve(self, message: Message) -> Generator:
        """Produce the version to serve for a user request.

        A generator (may wait on upstream fetches); returns the version.
        """
        yield from self.ensure_fresh()
        return self.server.cached_version


class Infrastructure:
    """Wires the update-dissemination links between actors."""

    name: str = "base"

    def wire(self, provider: "ProviderActor", servers: List["ServerActor"]) -> None:
        """Set ``upstream`` / ``children`` on the given actors."""
        raise NotImplementedError

    def depth_of(self, server: "ServerActor") -> int:
        """Distance (in overlay hops) from the provider to *server*."""
        raise NotImplementedError
