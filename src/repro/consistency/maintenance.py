"""Automatic multicast-tree maintenance.

Section 1's argument against multicast trees: "node failures break the
structure connectivity and lead to unsuccessful update propagation.
Aside from node failures, the structure maintenance will incur high
overhead and complicated management due to the dynamism of servers."

:class:`TreeMaintainer` makes that overhead measurable: every
``heartbeat_s`` each tree edge carries a heartbeat message (charged to
the traffic ledger as TREE_MAINTENANCE traffic), and a parent that has
been unreachable for ``failure_timeout_s`` is declared failed and
repaired -- its orphans re-attach via
:meth:`~repro.consistency.multicast.MulticastTreeInfrastructure.repair`.

The trade is explicit: shorter heartbeats detect failures faster
(less staleness in the dead node's subtree) but cost proportionally
more maintenance traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..network.link import NetworkFabric
from ..network.message import Message, MessageKind
from ..sim.engine import Environment
from .multicast import MulticastTreeInfrastructure

__all__ = ["TreeMaintainer"]


class TreeMaintainer:
    """Heartbeat-driven failure detection and repair for a multicast tree."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        tree: MulticastTreeInfrastructure,
        servers: List,
        heartbeat_s: float = 30.0,
        failure_timeout_s: Optional[float] = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        self.env = env
        self.fabric = fabric
        self.tree = tree
        self.servers = list(servers)
        self.heartbeat_s = heartbeat_s
        #: A parent missing this many seconds of heartbeats is failed.
        self.failure_timeout_s = (
            failure_timeout_s if failure_timeout_s is not None else 2.5 * heartbeat_s
        )
        if self.failure_timeout_s < heartbeat_s:
            raise ValueError("failure_timeout_s must be >= heartbeat_s")
        #: parent node_id -> last time a heartbeat reached it.
        self._last_ok: Dict[str, float] = {}
        #: Counters for experiments.
        self.heartbeats_sent = 0
        self.repairs = 0
        self._proc = None

    def start(self) -> None:
        """Launch the maintenance loop (idempotent)."""
        if self._proc is None:
            self._proc = self.env.process(self._loop())

    # ------------------------------------------------------------------
    def _loop(self):
        while True:
            yield self.env.timeout(self.heartbeat_s)
            self._heartbeat_round()
            self._detect_and_repair()

    def _heartbeat_round(self) -> None:
        """Each child pings its (believed) parent; reachable parents are
        refreshed, unreachable ones age toward the failure timeout."""
        now = self.env.now
        for server in self.servers:
            if not server.node.is_up:
                continue
            parent = self.tree.parent_of(server)
            if parent is None:
                continue
            self.heartbeats_sent += 1
            self.fabric.send(
                Message(
                    MessageKind.TREE_MAINTENANCE,
                    server.node,
                    parent.node,
                    server.content.light_size_kb,
                )
            )
            if parent.node.is_up:
                self._last_ok[parent.node.node_id] = now
            else:
                self._last_ok.setdefault(parent.node.node_id, now - self.heartbeat_s)

    def _detect_and_repair(self) -> None:
        now = self.env.now
        for server in list(self.servers):
            parent = self.tree.parent_of(server)
            if parent is None or parent.node.is_up:
                continue
            last_ok = self._last_ok.get(parent.node.node_id, now)
            if now - last_ok >= self.failure_timeout_s:
                self.repairs += 1
                self.tree.repair(parent)
                self._last_ok.pop(parent.node.node_id, None)

    # ------------------------------------------------------------------
    def maintenance_messages(self) -> int:
        """TREE_MAINTENANCE messages carried so far (heartbeats + joins)."""
        return self.fabric.ledger.kind_totals(MessageKind.TREE_MAINTENANCE).count
