"""Hilbert-curve geographic clustering.

Section 5.2 of the paper groups content servers into clusters following
[39]: the Hilbert curve [44] converts (longitude, latitude) into a
one-dimensional *Hilbert number*; physically close nodes get similar
numbers, so sorting by Hilbert number and cutting the sorted sequence
into contiguous ranges yields proximity-preserving clusters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..network.geo import GeoPoint

__all__ = [
    "xy_to_hilbert",
    "hilbert_to_xy",
    "hilbert_number",
    "cluster_by_hilbert",
    "DEFAULT_ORDER",
]

#: Curve order: the globe is discretised into a 2^order x 2^order grid.
DEFAULT_ORDER = 12


def _validate(order: int, x: int, y: int) -> int:
    if order <= 0:
        raise ValueError("order must be positive")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError("cell (%d, %d) outside %dx%d grid" % (x, y, side, side))
    return side


def xy_to_hilbert(order: int, x: int, y: int) -> int:
    """Distance along the Hilbert curve of the grid cell ``(x, y)``."""
    side = _validate(order, x, y)
    rx = ry = 0
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def hilbert_to_xy(order: int, d: int) -> Tuple[int, int]:
    """Inverse of :func:`xy_to_hilbert`."""
    if order <= 0:
        raise ValueError("order must be positive")
    side = 1 << order
    if not 0 <= d < side * side:
        raise ValueError("d=%d outside curve of length %d" % (d, side * side))
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_number(point: GeoPoint, order: int = DEFAULT_ORDER) -> int:
    """Hilbert number of a geographic point.

    Longitude/latitude are scaled onto the ``2^order`` grid; the curve
    preserves locality, so nearby points receive nearby numbers.
    """
    side = 1 << order
    x = int((point.lon + 180.0) / 360.0 * (side - 1))
    y = int((point.lat + 90.0) / 180.0 * (side - 1))
    return xy_to_hilbert(order, x, y)


def cluster_by_hilbert(
    items: Sequence, n_clusters: int, key=lambda item: item, order: int = DEFAULT_ORDER
) -> List[List]:
    """Split *items* into ``n_clusters`` proximity-preserving groups.

    ``key(item)`` must return the item's :class:`GeoPoint`.  Items are
    sorted by Hilbert number and cut into contiguous, size-balanced
    ranges (the grouping used by HAT's hybrid infrastructure).
    """
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    items = list(items)
    if not items:
        return [[] for _ in range(n_clusters)]
    n_clusters = min(n_clusters, len(items))
    decorated = sorted(items, key=lambda item: hilbert_number(key(item), order))
    # Size-balanced contiguous cuts.
    clusters: List[List] = []
    base, extra = divmod(len(decorated), n_clusters)
    start = 0
    for i in range(n_clusters):
        size = base + (1 if i < extra else 0)
        clusters.append(decorated[start : start + size])
        start += size
    return clusters
