"""Server-based Invalidation.

On every update the provider sends a small invalidation notice to each
replica; a replica marks its copy stale and fetches the new body only
when the next end-user request actually needs it.  This saves traffic
when contents are updated more often than they are visited (Section 1).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..network.message import Message, MessageKind
from ..sim.engine import Event
from .base import ServerPolicy

__all__ = ["InvalidationPolicy"]


class InvalidationPolicy(ServerPolicy):
    """Mark stale on notice; fetch on demand; relay notices downstream."""

    method_name = "invalidation"

    def __init__(self, forward: bool = True, fetch_timeout_s: Optional[float] = 60.0) -> None:
        super().__init__()
        self.forward = forward
        self.fetch_timeout_s = fetch_timeout_s
        self._fetch_inflight: Optional[Event] = None

    # ------------------------------------------------------------------
    def on_invalidate(self, message: Message) -> None:
        self.server.mark_invalidated(message.version)
        if self.forward:
            # Relay down the tree so every replica hears about the update
            # exactly once (the tree structure guarantees no duplicates).
            self.server.invalidate_children(message.version)

    def ensure_fresh(self) -> Generator:
        """Fetch the current body from upstream if our copy is stale.

        Concurrent triggers (several users, or a user plus a child's
        fetch) share one in-flight fetch instead of duplicating it.
        """
        server = self.server
        if not server.is_invalidated:
            return
        if self._fetch_inflight is not None:
            yield self._fetch_inflight
            return
        self._fetch_inflight = server.env.event()
        try:
            response = yield from server.request(
                MessageKind.FETCH,
                server.upstream,
                server.content.light_size_kb,
                timeout=self.fetch_timeout_s,
            )
            if response is not None:
                server.apply_version(response.version)
            tracer = server.env.tracer
            if tracer.enabled:
                tracer.emit(
                    server.env.now, "fetch_round", server.node.node_id,
                    recovered=response is not None,
                )
        finally:
            inflight, self._fetch_inflight = self._fetch_inflight, None
            inflight.succeed()
