"""Canonical registry of update methods and update infrastructures.

Every place that turns a *name* into a policy or an infrastructure --
the CLI's ``--method``/``--infrastructure`` choices, the testbed's
:func:`~repro.experiments.testbed.build_deployment`, and the sweep
runner's :class:`~repro.runner.RunSpec` -- resolves through this one
table, so aliases ("self", "adaptive", "inval") and the canonical name
lists cannot drift apart.

A method entry knows how to build its :class:`ServerPolicy` from the
two knobs every policy shares (the content-server TTL and the polling
phase RNG stream) and, for push-flavoured methods, which provider-side
hook (:class:`~repro.cdn.provider.ProviderActor` method name) arms the
origin to feed the servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .adaptive import AdaptiveTTLPolicy, SelfAdaptivePolicy
from .base import Infrastructure, ServerPolicy
from .broadcast import BroadcastInfrastructure
from .invalidation import InvalidationPolicy
from .multicast import MulticastTreeInfrastructure
from .push import PushPolicy
from .ttl import TTLPolicy
from .unicast import UnicastInfrastructure

__all__ = [
    "MethodEntry",
    "InfrastructureEntry",
    "METHOD_REGISTRY",
    "INFRASTRUCTURE_REGISTRY",
    "method_names",
    "method_choices",
    "infrastructure_names",
    "infrastructure_choices",
    "resolve_method",
    "resolve_infrastructure",
]


@dataclass(frozen=True)
class MethodEntry:
    """One update method: canonical name, aliases, and factories."""

    name: str
    #: Builds the per-server policy from (server_ttl_s, phase_stream).
    factory: Callable[[float, object], ServerPolicy]
    aliases: Tuple[str, ...] = ()
    #: Name of the ProviderActor method that arms the origin for this
    #: update method (``None`` for pull-only methods).
    provider_hook: Optional[str] = None


@dataclass(frozen=True)
class InfrastructureEntry:
    """One update infrastructure: canonical name, aliases, factory."""

    name: str
    #: Builds the infrastructure from (fabric, tree_arity).
    factory: Callable[[object, int], Infrastructure]
    aliases: Tuple[str, ...] = ()


def _dynamic_policy(ttl_s: float, stream) -> ServerPolicy:
    # Imported lazily: repro.core depends on repro.consistency, so a
    # module-level import here would be circular.
    from ..core.dynamic import DynamicPolicy

    return DynamicPolicy(
        ttl_s, staleness_tolerance_s=ttl_s / 2.0, stream=stream
    )


#: Canonical method table, in the order the paper introduces them.
METHOD_REGISTRY: Dict[str, MethodEntry] = {
    entry.name: entry
    for entry in (
        MethodEntry(
            name="push",
            factory=lambda ttl_s, stream: PushPolicy(forward=True),
            provider_hook="use_push",
        ),
        MethodEntry(
            name="invalidation",
            factory=lambda ttl_s, stream: InvalidationPolicy(forward=True),
            aliases=("inval",),
            provider_hook="use_invalidation",
        ),
        MethodEntry(
            name="ttl",
            factory=lambda ttl_s, stream: TTLPolicy(ttl_s, stream=stream),
        ),
        MethodEntry(
            name="self-adaptive",
            factory=lambda ttl_s, stream: SelfAdaptivePolicy(ttl_s, stream=stream),
            aliases=("self",),
            provider_hook="use_self_adaptive",
        ),
        MethodEntry(
            name="adaptive-ttl",
            factory=lambda ttl_s, stream: AdaptiveTTLPolicy(
                min_ttl_s=ttl_s, max_ttl_s=8.0 * ttl_s, stream=stream
            ),
            aliases=("adaptive",),
        ),
        MethodEntry(
            name="dynamic",
            factory=_dynamic_policy,
            provider_hook="use_dynamic",
        ),
    )
}

#: Canonical infrastructure table.
INFRASTRUCTURE_REGISTRY: Dict[str, InfrastructureEntry] = {
    entry.name: entry
    for entry in (
        InfrastructureEntry(
            name="unicast",
            factory=lambda fabric, arity: UnicastInfrastructure(),
            aliases=("star",),
        ),
        InfrastructureEntry(
            name="multicast",
            factory=lambda fabric, arity: MulticastTreeInfrastructure(
                fabric, arity=arity
            ),
            aliases=("tree",),
        ),
        InfrastructureEntry(
            name="broadcast",
            factory=lambda fabric, arity: BroadcastInfrastructure(fabric),
        ),
    )
}


def _alias_map(registry) -> Dict[str, str]:
    mapping: Dict[str, str] = {}
    for entry in registry.values():
        mapping[entry.name] = entry.name
        for alias in entry.aliases:
            mapping[alias] = entry.name
    return mapping


def method_names() -> Tuple[str, ...]:
    """The canonical method names, in registry order."""
    return tuple(METHOD_REGISTRY)


def method_choices() -> Tuple[str, ...]:
    """Canonical names plus every alias (for CLI ``choices=``)."""
    choices = list(METHOD_REGISTRY)
    for entry in METHOD_REGISTRY.values():
        choices.extend(entry.aliases)
    return tuple(choices)


def infrastructure_names() -> Tuple[str, ...]:
    """The canonical infrastructure names, in registry order."""
    return tuple(INFRASTRUCTURE_REGISTRY)


def infrastructure_choices() -> Tuple[str, ...]:
    """Canonical infrastructure names plus every alias."""
    choices = list(INFRASTRUCTURE_REGISTRY)
    for entry in INFRASTRUCTURE_REGISTRY.values():
        choices.extend(entry.aliases)
    return tuple(choices)


def resolve_method(name: str) -> MethodEntry:
    """Look up a method by canonical name or alias."""
    canonical = _alias_map(METHOD_REGISTRY).get(name)
    if canonical is None:
        raise ValueError(
            "unknown method %r (expected one of %s)"
            % (name, ", ".join(method_choices()))
        )
    return METHOD_REGISTRY[canonical]


def resolve_infrastructure(name: str) -> InfrastructureEntry:
    """Look up an infrastructure by canonical name or alias."""
    canonical = _alias_map(INFRASTRUCTURE_REGISTRY).get(name)
    if canonical is None:
        raise ValueError(
            "unknown infrastructure %r (expected one of %s)"
            % (name, ", ".join(infrastructure_choices()))
        )
    return INFRASTRUCTURE_REGISTRY[canonical]
