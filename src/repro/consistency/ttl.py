"""TTL-based consistency maintenance.

Two flavours:

- *eager* (the paper's Section 4 method): the server polls its upstream
  every TTL seconds regardless of demand;
- *lazy* (the behaviour the paper measures in the real CDN, Section
  3.4.1): the cached copy is served while its TTL is unexpired and only
  refetched on the first request after expiry.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from ..network.message import MessageKind
from ..sim.rng import RandomStream
from .base import ServerPolicy

__all__ = ["TTLPolicy"]


class TTLPolicy(ServerPolicy):
    """Poll the upstream whenever the TTL expires."""

    method_name = "ttl"

    def __init__(
        self,
        ttl_s: float,
        stream: Optional[RandomStream] = None,
        eager: bool = True,
        poll_timeout_s: Optional[float] = None,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        super().__init__()
        self.ttl_s = ttl_s
        self.stream = stream
        self.eager = eager
        #: Bound on how long one poll may hang (upstream down); defaults
        #: to the TTL itself so the poll loop can never stall for good.
        self.poll_timeout_s = poll_timeout_s if poll_timeout_s is not None else ttl_s
        self._poll_inflight = None

    # ------------------------------------------------------------------
    def processes(self) -> Iterable[Generator]:
        if self.eager:
            return [self._poll_loop()]
        return []

    def _initial_offset(self) -> float:
        # Desynchronised first polls: each server starts at a random
        # phase in [0, TTL), exactly the paper's assumption in Sec 3.4.1.
        if self.stream is None:
            return 0.0
        return self.stream.uniform(0.0, self.ttl_s)

    def _poll_loop(self) -> Generator:
        env = self.server.env
        offset = self._initial_offset()
        if offset > 0:
            yield env.pooled_timeout(offset)
        while True:
            # The sleep is measured from the *start* of the poll, so the
            # period stays anchored at one TTL even when the poll itself
            # takes time.  Sleeping a full TTL *after* a timed-out poll
            # (default poll_timeout_s == ttl_s) used to double the
            # effective period to ~2xTTL exactly when the upstream was
            # absent -- the paper's Fig. 10 scenario.
            poll_started = env.now
            yield from self.poll_once()
            elapsed = env.now - poll_started
            yield env.pooled_timeout(max(0.0, self.ttl_s - elapsed))

    def poll_once(self) -> Generator:
        """One poll round-trip; returns True if an update was received."""
        server = self.server
        response = yield from server.request(
            MessageKind.POLL,
            server.upstream,
            server.content.light_size_kb,
            payload={"have": server.cached_version},
            timeout=self.poll_timeout_s,
        )
        tracer = server.env.tracer
        if response is None:
            if tracer.enabled:
                tracer.emit(
                    server.env.now, "poll_round", server.node.node_id,
                    got_update=False, timed_out=True,
                )
            return False
        if response.kind is MessageKind.POLL_RESPONSE:
            server.apply_version(response.version, ttl=self.ttl_s)
            if tracer.enabled:
                tracer.emit(
                    server.env.now, "poll_round", server.node.node_id,
                    got_update=True, timed_out=False,
                )
            return True
        # Not modified: refresh the entry's TTL without a new body.
        server.cache.store(
            server.content.content_id,
            server.cached_version,
            server.env.now,
            self.ttl_s,
        )
        if tracer.enabled:
            tracer.emit(
                server.env.now, "poll_round", server.node.node_id,
                got_update=False, timed_out=False,
            )
        return False

    # ------------------------------------------------------------------
    def ensure_fresh(self) -> Generator:
        """Lazy mode: refetch on demand once the TTL has expired.

        Concurrent requests while a poll is in flight share that poll
        rather than issuing duplicates.
        """
        if self.eager:
            return
        server = self.server
        tracer = server.env.tracer
        entry = server.cache.entry(server.content.content_id)
        if entry.is_fresh(server.env.now):
            if tracer.enabled:
                tracer.emit(
                    server.env.now, "cache_hit", server.node.node_id,
                    version=entry.version,
                )
            return
        if tracer.enabled:
            tracer.emit(
                server.env.now, "cache_expired", server.node.node_id,
                version=entry.version,
            )
        if self._poll_inflight is not None:
            yield self._poll_inflight
            return
        self._poll_inflight = server.env.event()
        try:
            yield from self.poll_once()
        finally:
            inflight, self._poll_inflight = self._poll_inflight, None
            inflight.succeed()
