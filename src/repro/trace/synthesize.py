"""Generative model of the crawled CDN trace (the paper's Section 3 data).

The real trace is unavailable, so we synthesize one with the causal
structure the paper's measurement attributes to the CDN:

- every content server refreshes by **TTL polling the provider over
  unicast** (the infrastructure Section 3.5/3.6 deduces), TTL = 60 s,
  with an independent random phase per server per day;
- an update becomes *available* to a server only after: the provider's
  own small staleness (Sec 3.4.2), the fetch/propagation delay
  (Sec 3.4.3-3.4.4), and an extra inter-ISP transit delay for servers
  outside the provider's ISP (Sec 3.4.3);
- servers suffer occasional *absences* (overload / failure / reboot,
  Sec 3.4.5) during which they neither refresh nor answer the crawler,
  and polls shortly before/after an absence are flaky;
- the crawler polls every server each ``poll_interval_s`` (10 s) for a
  ``session_length_s`` (2.5 h) session per day, over ``n_days`` (15)
  days, and corrects server clock skew by the RTT/2 method (Sec 3.1),
  leaving a small residual timestamp error.

All series are produced with vectorised numpy, so synthesizing millions
of poll records takes seconds; a small-scale discrete-event cross-check
lives in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..network.geo import CityCatalog, haversine_km
from ..sim.rng import RandomStream, StreamRegistry
from .crawler import ClockModel
from .records import CdnTrace, DayTrace, PollSeries, ServerInfo
from .workload import LiveGameWorkload

__all__ = [
    "SynthesisConfig",
    "TraceSynthesizer",
    "UserDaySeries",
    "UserTrace",
    "synthesize_trace",
]


@dataclass(kw_only=True)
class SynthesisConfig:
    """Tunables of the generative trace model.

    Defaults are scaled down ~10x from the paper (3,000 servers,
    15 days) to keep the default run laptop-fast; the benchmarks scale
    back up where it matters.
    """

    n_servers: int = 300
    n_days: int = 15
    session_length_s: float = 9000.0   # 2.5 h of crawling per day
    poll_interval_s: float = 10.0
    ttl_s: float = 60.0                # the planted TTL (to be recovered)

    # --- update workload ------------------------------------------------
    #: Per-day snapshot counts.  Most crawl days are sparser than the
    #: Section 4 reference game (306 snapshots in 2.5 h): with typical
    #: inter-update gaps longer than the TTL, each server installs each
    #: version within one TTL window of its first appearance and the
    #: inconsistency CDF is near-linear on [0, TTL] (Fig. 5b); dense game
    #: days mix in a sub-TTL bell component.
    updates_per_day_low: int = 35
    updates_per_day_high: int = 160
    #: Fraction of the crawl session the game's activity occupies.  The
    #: crawler watches 2.5 h around each game; updates stop well before
    #: the session does, which is what keeps the instantaneous stale-
    #: server fraction (Fig. 4b) far below the in-play staleness.
    game_coverage: float = 0.55

    # --- provider behaviour ----------------------------------------------
    provider_staleness_mean_s: float = 3.4     # Fig. 7: mean 3.43 s
    provider_response_base_s: float = 0.5      # Fig. 10a: range [0.5, 2.1]
    provider_response_mean_extra_s: float = 0.45
    provider_response_max_s: float = 2.1

    # --- network ----------------------------------------------------------
    fetch_delay_low_s: float = 0.05
    fetch_delay_high_s: float = 0.8
    propagation_s_per_km: float = 1.0 / 200_000.0
    #: Per-ISP inter-domain severity: a server whose ISP differs from the
    #: provider's gets a per-update extra delay ~ U[0, severity].
    #: ISPs are heterogeneous (Sec 3.4.3 finds per-cluster inter-ISP
    #: increments spanning [3.69, 23.2] s): most ISPs have benign transit,
    #: a congested minority carries the tail -- which is also what keeps
    #: the majority of servers' *maximum* inconsistency below one TTL
    #: (Fig. 12: 76.7% / 86.9%).
    congested_isp_prob: float = 0.30
    clean_isp_severity_low_s: float = 0.5
    clean_isp_severity_high_s: float = 5.0
    congested_isp_severity_low_s: float = 20.0
    congested_isp_severity_high_s: float = 55.0

    # --- server failures / overload ---------------------------------------
    absence_prob_per_day: float = 0.10
    #: Absence-duration mixture (Fig. 10b: 30.4% < 10 s, 93.1% < 50 s,
    #: range [1, 500] s).
    absence_short_frac: float = 0.304
    absence_mid_frac: float = 0.627
    absence_max_s: float = 500.0
    #: Polls within this window around an absence fail with
    #: ``flaky_poll_prob`` (Fig. 10d: inconsistency rises near absences).
    absence_flaky_window_s: float = 40.0
    flaky_poll_prob: float = 0.35

    # --- crawler -----------------------------------------------------------
    clock_skew_sigma_s: float = 2.0
    rtt_asymmetry_sigma_s: float = 0.05

    def __post_init__(self) -> None:
        if self.n_servers <= 0 or self.n_days <= 0:
            raise ValueError("n_servers and n_days must be positive")
        if self.poll_interval_s <= 0 or self.ttl_s <= 0:
            raise ValueError("poll_interval_s and ttl_s must be positive")
        if not 0 < self.updates_per_day_low <= self.updates_per_day_high:
            raise ValueError("invalid updates_per_day range")
        if not 0.0 < self.game_coverage <= 1.0:
            raise ValueError("game_coverage must be in (0, 1]")
        if not 0.0 <= self.absence_prob_per_day <= 1.0:
            raise ValueError("absence_prob_per_day must be a probability")
        if self.absence_short_frac + self.absence_mid_frac > 1.0:
            raise ValueError("absence mixture fractions exceed 1")


@dataclass
class UserDaySeries:
    """One simulated end user's visit series for one day (Fig. 4)."""

    times: np.ndarray
    versions: np.ndarray
    server_ids: List[str]

    def __len__(self) -> int:
        return int(self.times.size)

    def redirected_fraction(self) -> float:
        """Fraction of visits served by a different server than the
        previous visit (Fig. 4a)."""
        if len(self.server_ids) < 2:
            return 0.0
        switches = sum(
            1 for a, b in zip(self.server_ids, self.server_ids[1:]) if a != b
        )
        return switches / (len(self.server_ids) - 1)


@dataclass
class UserTrace:
    """All simulated user observations (per user, per day)."""

    users: Dict[str, List[UserDaySeries]]
    poll_interval_s: float

    @property
    def n_users(self) -> int:
        return len(self.users)


class _ServerModel:
    """Per-server latent parameters (fixed across days)."""

    def __init__(
        self,
        info: ServerInfo,
        inter_isp_severity_s: float,
        propagation_s: float,
    ) -> None:
        self.info = info
        self.inter_isp_severity_s = inter_isp_severity_s
        self.propagation_s = propagation_s


class TraceSynthesizer:
    """Builds a :class:`CdnTrace` (and user observations) from the model."""

    PROVIDER_CITY = "Atlanta"

    def __init__(self, config: Optional[SynthesisConfig] = None, master_seed: int = 0) -> None:
        self.config = config if config is not None else SynthesisConfig()
        self.streams = StreamRegistry(master_seed)
        self.catalog = CityCatalog()
        self._provider_point = self.catalog.by_name(self.PROVIDER_CITY).point
        self._provider_isp = "%s-transit" % self.PROVIDER_CITY
        self._clock = ClockModel(
            self.streams.stream("trace.clock"),
            skew_sigma_s=self.config.clock_skew_sigma_s,
            rtt_asymmetry_sigma_s=self.config.rtt_asymmetry_sigma_s,
        )
        self._servers = self._place_servers()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _place_servers(self) -> List[_ServerModel]:
        place = self.streams.stream("trace.place")
        isp_stream = self.streams.stream("trace.isp")
        severity_stream = self.streams.stream("trace.isp.severity")
        cfg = self.config

        #: severity per ISP (shared by all its servers), provider ISP = 0
        isp_severity: Dict[str, float] = {self._provider_isp: 0.0}
        servers: List[_ServerModel] = []
        for index in range(cfg.n_servers):
            city, point = self.catalog.sample_point(place)
            # A few ISPs per region; ~10% of servers share the provider ISP.
            if isp_stream.bernoulli(0.10):
                isp = self._provider_isp
            else:
                isp = "%s-isp-%d" % (city.region, isp_stream.randint(0, 5))
            if isp not in isp_severity:
                if severity_stream.bernoulli(cfg.congested_isp_prob):
                    isp_severity[isp] = severity_stream.uniform(
                        cfg.congested_isp_severity_low_s, cfg.congested_isp_severity_high_s
                    )
                else:
                    isp_severity[isp] = severity_stream.uniform(
                        cfg.clean_isp_severity_low_s, cfg.clean_isp_severity_high_s
                    )
            distance = haversine_km(point, self._provider_point)
            info = ServerInfo(
                server_id="server-%04d" % index,
                point=point,
                isp=isp,
                geo_cluster=city.name,
                distance_to_provider_km=distance,
            )
            servers.append(
                _ServerModel(
                    info,
                    inter_isp_severity_s=isp_severity[isp],
                    propagation_s=distance * cfg.propagation_s_per_km * 1.3,
                )
            )
        return servers

    # ------------------------------------------------------------------
    # main synthesis
    # ------------------------------------------------------------------
    def synthesize(self) -> CdnTrace:
        cfg = self.config
        days: List[DayTrace] = []
        for day_index in range(cfg.n_days):
            days.append(self._synthesize_day(day_index))
        return CdnTrace(
            servers={model.info.server_id: model.info for model in self._servers},
            days=days,
            poll_interval_s=cfg.poll_interval_s,
            ttl_s=cfg.ttl_s,
        )

    def _day_updates(self, day_index: int) -> np.ndarray:
        cfg = self.config
        count_stream = self.streams.stream("trace.updates.count")
        n_updates = count_stream.randint(cfg.updates_per_day_low, cfg.updates_per_day_high)
        workload = LiveGameWorkload(
            n_updates=n_updates,
            duration_s=cfg.game_coverage * min(8760.0, cfg.session_length_s),
        )
        times = workload.generate(self.streams.stream("trace.updates.day%d" % day_index))
        return np.asarray(times, dtype=float)

    def _synthesize_day(self, day_index: int) -> DayTrace:
        cfg = self.config
        updates = self._day_updates(day_index)
        n_updates = updates.size

        lag_stream = self.streams.stream("trace.provider.lag.day%d" % day_index)
        provider_lag = np.asarray(
            [lag_stream.expovariate(1.0 / cfg.provider_staleness_mean_s) for _ in range(n_updates)]
        )
        #: Time each update is visible *at the provider's edge* (shared
        #: component of all servers' availability).
        provider_avail = updates + provider_lag

        day = DayTrace(
            day_index=day_index,
            session_length_s=cfg.session_length_s,
            update_times=updates,
        )
        day.provider_polls = self._provider_series(day_index, updates, provider_avail)
        day.provider_response_times = self._provider_response_times(day_index)

        for model in self._servers:
            day.polls[model.info.server_id] = self._server_series(
                day_index, model, provider_avail
            )
        return day

    # ------------------------------------------------------------------
    def _provider_series(
        self, day_index: int, updates: np.ndarray, provider_avail: np.ndarray
    ) -> PollSeries:
        cfg = self.config
        crawl_times = np.arange(0.0, cfg.session_length_s, cfg.poll_interval_s)
        # max version visible at t (availability may be slightly out of
        # order because provider lags are independent).
        b = _min_from_right(provider_avail)
        versions = np.searchsorted(b, crawl_times, side="right")
        return PollSeries(times=crawl_times, versions=versions)

    def _provider_response_times(self, day_index: int) -> np.ndarray:
        cfg = self.config
        stream = self.streams.stream("trace.provider.resp.day%d" % day_index)
        n = int(cfg.session_length_s / cfg.poll_interval_s)
        extra_cap = cfg.provider_response_max_s - cfg.provider_response_base_s
        samples = [
            cfg.provider_response_base_s
            + min(extra_cap, stream.expovariate(1.0 / cfg.provider_response_mean_extra_s))
            for _ in range(n)
        ]
        return np.asarray(samples, dtype=float)

    # ------------------------------------------------------------------
    def _server_series(
        self, day_index: int, model: _ServerModel, provider_avail: np.ndarray
    ) -> PollSeries:
        cfg = self.config
        sid = model.info.server_id
        stream = self.streams.stream("trace.server.%s.day%d" % (sid, day_index))
        n_updates = provider_avail.size

        # Per-update availability at this server.
        fetch_delay = np.asarray(
            [stream.uniform(cfg.fetch_delay_low_s, cfg.fetch_delay_high_s) for _ in range(n_updates)]
        )
        if model.inter_isp_severity_s > 0:
            isp_delay = np.asarray(
                [stream.uniform(0.0, model.inter_isp_severity_s) for _ in range(n_updates)]
            )
        else:
            isp_delay = np.zeros(n_updates)
        avail = provider_avail + model.propagation_s + fetch_delay + isp_delay
        b = _min_from_right(avail)

        # TTL refresh grid with a random phase (lazy TTL + a crawler poll
        # every 10 s keeps the cache hot, so refreshes happen each TTL).
        phase = stream.uniform(0.0, cfg.ttl_s)
        poll_times = np.arange(phase, cfg.session_length_s, cfg.ttl_s)

        # Absences: refreshes and crawler polls inside are lost; polls in
        # the flanking window are flaky.  Lazy-TTL semantics on return:
        # the cache has expired during any non-trivial absence, so the
        # first request after it triggers an immediate refetch (which is
        # why the paper's Fig. 10c shows only a modest staleness bump,
        # not staleness proportional to the absence length).
        absences = self._sample_absences(stream)
        keep = np.ones(poll_times.size, dtype=bool)
        recovery_polls = []
        for start, duration in absences:
            inside = (poll_times >= start) & (poll_times < start + duration)
            keep &= ~inside
            flank = (
                (poll_times >= start - cfg.absence_flaky_window_s)
                & (poll_times < start + duration + cfg.absence_flaky_window_s)
                & ~inside
            )
            for idx in np.nonzero(flank)[0]:
                if stream.bernoulli(cfg.flaky_poll_prob):
                    keep[idx] = False
            if duration >= cfg.ttl_s / 4.0 and start + duration < cfg.session_length_s:
                # refetch fires with the first request after return,
                # i.e. essentially at the moment service resumes
                recovery_polls.append(start + duration)
        poll_times = poll_times[keep]
        if recovery_polls:
            poll_times = np.sort(np.concatenate([poll_times, recovery_polls]))
        poll_versions = np.searchsorted(b, poll_times, side="right")

        # Crawler records: every poll_interval_s with a per-server phase
        # (each PlanetLab observer started independently), skipping
        # absences.
        crawl_phase = stream.uniform(0.0, cfg.poll_interval_s)
        crawl_times = np.arange(crawl_phase, cfg.session_length_s, cfg.poll_interval_s)
        crawl_keep = np.ones(crawl_times.size, dtype=bool)
        for start, duration in absences:
            crawl_keep &= ~((crawl_times >= start) & (crawl_times < start + duration))
        crawl_times = crawl_times[crawl_keep]

        if poll_times.size:
            last_poll_idx = np.searchsorted(poll_times, crawl_times, side="right") - 1
            crawl_versions = np.where(
                last_poll_idx >= 0, poll_versions[np.maximum(last_poll_idx, 0)], 0
            )
        else:
            crawl_versions = np.zeros(crawl_times.size, dtype=np.int64)

        # Clock skew: stamp with the server clock, then correct (Sec 3.1),
        # leaving the RTT-asymmetry residual.
        estimate = self._clock.sample()
        crawl_times = self._clock.correct_timestamps(
            self._clock.skew_timestamps(crawl_times, estimate), estimate
        )

        return PollSeries(
            times=crawl_times,
            versions=crawl_versions.astype(np.int64),
            absences=absences,
        )

    def _sample_absences(self, stream: RandomStream) -> List[Tuple[float, float]]:
        cfg = self.config
        if not stream.bernoulli(cfg.absence_prob_per_day):
            return []
        start = stream.uniform(0.0, cfg.session_length_s * 0.9)
        u = stream.random()
        if u < cfg.absence_short_frac:
            duration = stream.uniform(1.0, 10.0)
        elif u < cfg.absence_short_frac + cfg.absence_mid_frac:
            duration = stream.uniform(10.0, 50.0)
        else:
            # Long tail: log-uniform in [50, absence_max_s].
            duration = 50.0 * (cfg.absence_max_s / 50.0) ** stream.random()
        return [(start, duration)]

    # ------------------------------------------------------------------
    # user-view simulation (Fig. 4 / Fig. 24 trace analogue)
    # ------------------------------------------------------------------
    def synthesize_users(
        self,
        trace: CdnTrace,
        n_users: int = 200,
        poll_interval_s: Optional[float] = None,
        dns_ttl_low_s: float = 40.0,
        dns_ttl_high_s: float = 80.0,
        candidates_low: int = 3,
        candidates_high: int = 5,
    ) -> UserTrace:
        """Simulate end users polling through DNS redirection (Sec 3.3)."""
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        interval = poll_interval_s if poll_interval_s is not None else trace.poll_interval_s
        place = self.streams.stream("trace.user.place")
        dns_stream = self.streams.stream("trace.user.dns")

        server_infos = [trace.servers[sid] for sid in trace.server_ids()]
        users: Dict[str, List[UserDaySeries]] = {}
        for user_index in range(n_users):
            _, point = self.catalog.sample_point(place)
            ranked = sorted(
                server_infos, key=lambda info: haversine_km(point, info.point)
            )
            k = dns_stream.randint(candidates_low, candidates_high)
            candidates = [info.server_id for info in ranked[:k]]
            user_days: List[UserDaySeries] = []
            for day in trace.days:
                user_days.append(
                    self._user_day(
                        day, candidates, interval, dns_stream, dns_ttl_low_s, dns_ttl_high_s
                    )
                )
            users["user-%03d" % user_index] = user_days
        return UserTrace(users=users, poll_interval_s=interval)

    def _user_day(
        self,
        day: DayTrace,
        candidates: Sequence[str],
        interval: float,
        dns_stream: RandomStream,
        dns_ttl_low_s: float,
        dns_ttl_high_s: float,
    ) -> UserDaySeries:
        times = np.arange(0.0, day.session_length_s, interval)
        versions = np.zeros(times.size, dtype=np.int64)
        server_ids: List[str] = []
        current = dns_stream.choice(list(candidates))
        lease_until = dns_stream.uniform(dns_ttl_low_s, dns_ttl_high_s)
        for i, t in enumerate(times):
            if t >= lease_until:
                current = dns_stream.choice(list(candidates))
                lease_until = t + dns_stream.uniform(dns_ttl_low_s, dns_ttl_high_s)
            series = day.polls.get(current)
            versions[i] = series.version_at(float(t)) if series is not None else 0
            server_ids.append(current)
        return UserDaySeries(times=times, versions=versions, server_ids=server_ids)


def _min_from_right(values: np.ndarray) -> np.ndarray:
    """``b[i] = min(values[i:])``: the time by which version >= i+1 exists.

    Availability can be locally out of order (independent per-update
    delays); a server polling at time t applies the *highest* available
    version, i.e. ``searchsorted(b, t, 'right')``.
    """
    if values.size == 0:
        return values
    return np.minimum.accumulate(values[::-1])[::-1]


def synthesize_trace(
    config: Optional[SynthesisConfig] = None, master_seed: int = 0
) -> CdnTrace:
    """One-call convenience: build a synthetic CDN trace."""
    return TraceSynthesizer(config, master_seed).synthesize()
