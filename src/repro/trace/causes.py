"""Cause-of-inconsistency analyses (Section 3.4, Figs. 7-10).

Each function isolates one candidate cause exactly as the paper does:
provider-side staleness, provider-server distance, inter-ISP transit,
provider bandwidth (response times), and server absence
(overload/failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.stats import PercentileSummary, pearson_r, summarize
from .analysis import alpha_times, consistency_ratio, episode_lengths, provider_inconsistencies
from .clustering import distance_bands, isp_clusters
from .records import CdnTrace

__all__ = [
    "provider_inconsistency_sample",
    "provider_response_times",
    "DistanceAnalysis",
    "consistency_vs_distance",
    "IspClusterResult",
    "isp_inconsistency_analysis",
    "observed_absence_lengths",
    "absence_impact",
    "inconsistency_around_absences",
]


# ----------------------------------------------------------------------
# Fig. 7: provider inconsistency
# ----------------------------------------------------------------------
def provider_inconsistency_sample(trace: CdnTrace) -> np.ndarray:
    """Provider-served staleness episodes (delegates to analysis)."""
    return provider_inconsistencies(trace)


# ----------------------------------------------------------------------
# Fig. 10a: provider response times
# ----------------------------------------------------------------------
def provider_response_times(trace: CdnTrace) -> np.ndarray:
    """All recorded provider response times."""
    chunks = [day.provider_response_times for day in trace.days]
    chunks = [c for c in chunks if c.size]
    if not chunks:
        return np.empty(0)
    return np.concatenate(chunks)


# ----------------------------------------------------------------------
# Fig. 8: distance vs consistency ratio
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DistanceAnalysis:
    """Per-distance-band mean consistency ratios plus the correlation."""

    band_centres_km: Tuple[float, ...]
    band_mean_ratios: Tuple[float, ...]
    pearson_r: float


def consistency_vs_distance(trace: CdnTrace, band_km: float = 1000.0) -> DistanceAnalysis:
    """Fig. 8: average consistency ratio per provider-distance band.

    The paper finds essentially no correlation (r = 0.11): propagation
    delay is a negligible cause.
    """
    ratios = {sid: consistency_ratio(trace, sid) for sid in trace.server_ids()}
    distances = [trace.servers[sid].distance_to_provider_km for sid in trace.server_ids()]
    values = [ratios[sid] for sid in trace.server_ids()]
    centres: List[float] = []
    means: List[float] = []
    for centre, ids in distance_bands(trace, band_km):
        centres.append(centre)
        means.append(float(np.mean([ratios[sid] for sid in ids])))
    return DistanceAnalysis(
        band_centres_km=tuple(centres),
        band_mean_ratios=tuple(means),
        pearson_r=pearson_r(distances, values),
    )


# ----------------------------------------------------------------------
# Fig. 9: intra- vs inter-ISP inconsistency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IspClusterResult:
    """One ISP cluster's intra/inter inconsistency summaries."""

    isp: str
    n_servers: int
    intra: PercentileSummary
    inter: PercentileSummary

    @property
    def increment_mean_s(self) -> float:
        """By how much inter-ISP measurement exceeds intra (Fig. 9d)."""
        return self.inter.mean - self.intra.mean


def isp_inconsistency_analysis(
    trace: CdnTrace, min_cluster_size: int = 3
) -> List[IspClusterResult]:
    """Fig. 9b-d: per-ISP-cluster intra vs inter inconsistency.

    Intra lengths use ``alpha`` restricted to the cluster's own servers;
    inter lengths use the earliest appearance among all *other*
    clusters' servers (the paper's inter-ISP definition).
    """
    clusters = isp_clusters(trace, min_size=min_cluster_size)
    results: List[IspClusterResult] = []
    for isp, members in sorted(clusters.items()):
        intra_chunks: List[np.ndarray] = []
        inter_chunks: List[np.ndarray] = []
        for day in trace.days:
            others = [sid for sid in day.polls if sid not in set(members)]
            alpha_intra = alpha_times(day, members)
            alpha_inter = alpha_times(day, others) if others else alpha_intra
            for sid in members:
                series = day.polls.get(sid)
                if series is None:
                    continue
                intra_chunks.append(episode_lengths(series, alpha_intra))
                inter_chunks.append(episode_lengths(series, alpha_inter))
        intra = np.concatenate(intra_chunks) if intra_chunks else np.empty(0)
        inter = np.concatenate(inter_chunks) if inter_chunks else np.empty(0)
        if intra.size == 0 or inter.size == 0:
            continue
        results.append(
            IspClusterResult(
                isp=isp,
                n_servers=len(members),
                intra=summarize(intra),
                inter=summarize(inter),
            )
        )
    return results


# ----------------------------------------------------------------------
# Fig. 10b-d: server absence (overload / failure)
# ----------------------------------------------------------------------
def observed_absence_lengths(trace: CdnTrace) -> np.ndarray:
    """Absence lengths as the crawler observes them (Fig. 10b).

    Two successive responses at ``t_i, t_{i+1}`` imply an absence of
    ``t_{i+1} - t_i - poll_interval`` (the paper's estimator); gaps of at
    most one missed poll are noise and ignored.
    """
    lengths: List[float] = []
    threshold = 1.5 * trace.poll_interval_s
    for day in trace.days:
        for series in day.polls.values():
            if len(series) < 2:
                continue
            gaps = np.diff(series.times)
            for gap in gaps[gaps > threshold]:
                lengths.append(float(gap - trace.poll_interval_s))
    return np.asarray(lengths)


def _first_record_after(series, t: float) -> Optional[int]:
    idx = int(np.searchsorted(series.times, t, side="left"))
    if idx >= len(series):
        return None
    return idx


def absence_impact(
    trace: CdnTrace, bin_width_s: float = 50.0, max_absence_s: float = 400.0
) -> Dict[float, float]:
    """Fig. 10c: average inconsistency length vs absence length.

    For each absence, the scored value is the inconsistency length of
    the episode containing the first response after the server returns.
    Bin 0.0 holds the baseline: mean inconsistency of server-days with
    no absence at all.
    """
    binned: Dict[float, List[float]] = {0.0: []}
    for day in trace.days:
        alpha = alpha_times(day)
        for series in day.polls.values():
            lengths = episode_lengths(series, alpha)
            if not series.absences:
                if lengths.size:
                    binned[0.0].append(float(lengths.mean()))
                continue
            for start, duration in series.absences:
                if duration > max_absence_s:
                    continue
                idx = _first_record_after(series, start + duration)
                if idx is None:
                    continue
                value = _episode_length_at(series, idx, alpha)
                if value is None:
                    continue
                bin_centre = (int(duration // bin_width_s) + 0.5) * bin_width_s
                binned.setdefault(bin_centre, []).append(value)
    return {
        centre: float(np.mean(values))
        for centre, values in sorted(binned.items())
        if values
    }


def _episode_length_at(series, index: int, alpha: np.ndarray) -> Optional[float]:
    """Inconsistency length of the episode covering record *index*."""
    version = int(series.versions[index])
    successor = version + 1
    if successor >= alpha.size or not np.isfinite(alpha[successor]):
        return None
    # beta: last record still showing `version`.
    later = series.versions[index:]
    run_end = index + int(np.searchsorted(later, version, side="right")) - 1
    return max(0.0, float(series.times[run_end]) - float(alpha[successor]))


def inconsistency_around_absences(
    trace: CdnTrace,
    offsets_s: Sequence[float] = (20.0, 40.0, 60.0),
    group_width_s: float = 100.0,
    max_absence_s: float = 400.0,
) -> Dict[Tuple[float, float], float]:
    """Fig. 10d: mean episode inconsistency within +/- *offset* of an
    absence, grouped by absence length.

    Returns ``{(group upper bound, offset): mean length}``; smaller
    offsets (closer to the absence) show larger inconsistency.
    """
    collected: Dict[Tuple[float, float], List[float]] = {}
    for day in trace.days:
        alpha = alpha_times(day)
        for series in day.polls.values():
            for start, duration in series.absences:
                if duration > max_absence_s:
                    continue
                group = (int(duration // group_width_s) + 1) * group_width_s
                for offset in offsets_s:
                    lo, hi = start - offset, start + duration + offset
                    mask = (series.times >= lo) & (series.times <= hi)
                    for idx in np.nonzero(mask)[0]:
                        value = _episode_length_at(series, int(idx), alpha)
                        if value is not None:
                            collected.setdefault((group, offset), []).append(value)
    return {
        key: float(np.mean(values)) for key, values in sorted(collected.items()) if values
    }
