"""Crawler clock-skew handling (Section 3.1).

The paper's crawl records each snapshot with the *content server's* GMT
time, which is not synchronised across servers.  The measurement
methodology removes the skew: a reference PlanetLab node ``n_i`` polls
each server ``s_j`` and estimates the server's offset as

    eps(n_i, s_j) = t_sj - t_ni - RTT / 2

then subtracts ``eps`` from every timestamp of ``s_j``.  The estimate is
imperfect (RTT asymmetry), leaving a small residual error -- which we
reproduce, because it is part of why trace inconsistency measurements
have sub-second noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import RandomStream

__all__ = ["ClockModel", "SkewEstimate"]


@dataclass(frozen=True)
class SkewEstimate:
    """One server's estimated clock offset."""

    true_skew_s: float
    estimated_skew_s: float

    @property
    def residual_s(self) -> float:
        """Error remaining after correction."""
        return self.true_skew_s - self.estimated_skew_s


class ClockModel:
    """Samples server clock skews and simulates the RTT/2 correction."""

    def __init__(
        self,
        stream: RandomStream,
        skew_sigma_s: float = 2.0,
        rtt_asymmetry_sigma_s: float = 0.05,
    ) -> None:
        if skew_sigma_s < 0 or rtt_asymmetry_sigma_s < 0:
            raise ValueError("sigmas must be >= 0")
        self.stream = stream
        self.skew_sigma_s = skew_sigma_s
        self.rtt_asymmetry_sigma_s = rtt_asymmetry_sigma_s

    def sample(self) -> SkewEstimate:
        """Skew of one server plus the crawler's estimate of it.

        The estimate differs from the truth by the forward/return path
        asymmetry the RTT/2 assumption cannot see.
        """
        true_skew = self.stream.gauss(0.0, self.skew_sigma_s)
        asymmetry = self.stream.gauss(0.0, self.rtt_asymmetry_sigma_s)
        return SkewEstimate(true_skew_s=true_skew, estimated_skew_s=true_skew + asymmetry)

    @staticmethod
    def skew_timestamps(times: np.ndarray, estimate: SkewEstimate) -> np.ndarray:
        """What the server's clock would have stamped (truth + skew)."""
        return np.asarray(times, dtype=float) + estimate.true_skew_s

    @staticmethod
    def correct_timestamps(skewed_times: np.ndarray, estimate: SkewEstimate) -> np.ndarray:
        """Apply the paper's correction: subtract the estimated offset.

        Leaves the residual ``true - estimated`` in every timestamp.
        """
        return np.asarray(skewed_times, dtype=float) - estimate.estimated_skew_s

    def roundtrip(self, times: np.ndarray) -> np.ndarray:
        """Convenience: skew then correct, returning corrected times."""
        estimate = self.sample()
        return self.correct_timestamps(self.skew_timestamps(times, estimate), estimate)
