"""Grouping trace servers for the Section 3 cluster analyses.

The paper clusters servers two ways: geographically ("grouped the
servers with the same longitude and latitude into a cluster", via an IP
geolocation service) and by ISP (validated with traceroute).  The
synthetic trace stores both labels in :class:`ServerInfo`, so clustering
is a grouping of ids, with helpers for distance-based grouping (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from .records import CdnTrace

__all__ = [
    "geo_clusters",
    "isp_clusters",
    "distance_bands",
    "clusters_of_min_size",
]


def geo_clusters(trace: CdnTrace, min_size: int = 1) -> Dict[str, List[str]]:
    """Geographic (metro) cluster -> server ids, dropping tiny clusters."""
    return clusters_of_min_size(trace.servers_by_cluster(), min_size)


def isp_clusters(trace: CdnTrace, min_size: int = 1) -> Dict[str, List[str]]:
    """ISP cluster -> server ids, dropping tiny clusters."""
    return clusters_of_min_size(trace.servers_by_isp(), min_size)


def clusters_of_min_size(
    clusters: Dict[str, List[str]], min_size: int
) -> Dict[str, List[str]]:
    if min_size <= 1:
        return dict(clusters)
    return {name: ids for name, ids in clusters.items() if len(ids) >= min_size}


def distance_bands(
    trace: CdnTrace, band_km: float = 1000.0
) -> List[Tuple[float, List[str]]]:
    """Group servers by provider distance (Fig. 8's x-axis).

    Returns ``(band centre km, server ids)`` for each non-empty band.
    """
    if band_km <= 0:
        raise ValueError("band_km must be positive")
    bands: Dict[int, List[str]] = {}
    for sid, info in trace.servers.items():
        index = int(info.distance_to_provider_km // band_km)
        bands.setdefault(index, []).append(sid)
    return [
        ((index + 0.5) * band_km, sorted(ids))
        for index, ids in sorted(bands.items())
    ]
