"""Core trace estimators (Section 3.1-3.2).

Following the paper: identify each distinct snapshot ``C_i``; let
``alpha(C_i)`` be the first time ``C_i`` shows up anywhere in the trace
and ``beta(C_i, s)`` the last time server ``s`` shows it.  The
*inconsistency length* of ``C_i`` on ``s`` is::

    Delta(C_i, s) = beta(C_i, s) - alpha(C_{i+1})

i.e. how long ``s`` kept serving ``C_i`` after the trace proves the
successor existed.  Because we poll many servers, ``alpha`` is close to
the true update time.  Values are clamped at zero (the first server to
show the successor has no lag by construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sim.simtime import is_zero_duration
from .records import CdnTrace, DayTrace, PollSeries

__all__ = [
    "alpha_times",
    "episode_lengths",
    "day_inconsistencies",
    "all_inconsistencies",
    "server_mean_inconsistencies",
    "server_max_inconsistency",
    "consistency_ratio",
    "provider_inconsistencies",
    "inconsistent_server_fraction",
]


def alpha_times(day: DayTrace, server_ids: Optional[Sequence[str]] = None) -> np.ndarray:
    """First-appearance time of each version across the given servers.

    Returns ``alpha`` with ``alpha[i]`` = first time any considered
    server showed version ``>= i`` (``i`` in ``1..n_updates``; index 0 is
    unused and set to 0).  Versions never observed get ``inf``.
    """
    n = day.n_updates
    alpha = np.full(n + 1, np.inf)
    alpha[0] = 0.0
    ids = server_ids if server_ids is not None else list(day.polls)
    for sid in ids:
        series = day.polls.get(sid)
        if series is None or not len(series):
            continue
        # versions are non-decreasing per server: the first index whose
        # version >= i gives this server's first sight of >= i.
        first_idx = np.searchsorted(series.versions, np.arange(1, n + 1), side="left")
        valid = first_idx < len(series)
        firsts = np.where(valid, series.times[np.minimum(first_idx, len(series) - 1)], np.inf)
        alpha[1:] = np.minimum(alpha[1:], firsts)
    # Enforce monotonicity: version i+1 cannot be provably earlier than i.
    alpha[1:] = np.maximum.accumulate(alpha[1:])
    return alpha


def episode_lengths(series: PollSeries, alpha: np.ndarray) -> np.ndarray:
    """Inconsistency lengths of one server's poll series.

    One value per *episode* (a maximal run of one displayed version that
    has a successor): ``max(0, beta(C_i, s) - alpha(C_{i+1}))``.
    """
    if not len(series):
        return np.empty(0)
    versions = series.versions
    times = series.times
    # Episode boundaries: last index of each run of equal versions.
    change = np.nonzero(np.diff(versions))[0]
    last_idx = np.concatenate([change, [len(versions) - 1]])
    lengths: List[float] = []
    n_versions = alpha.size - 1
    for idx in last_idx:
        version = int(versions[idx])
        successor = version + 1
        if successor > n_versions:
            continue  # newest version of the day: no successor to lag behind
        a = alpha[successor]
        if not np.isfinite(a):
            continue
        lengths.append(max(0.0, float(times[idx]) - float(a)))
    return np.asarray(lengths)


def day_inconsistencies(
    day: DayTrace,
    server_ids: Optional[Sequence[str]] = None,
    alpha: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Per-server inconsistency-length arrays for one day.

    ``alpha`` may be precomputed (e.g. restricted to a cluster, as in
    the Fig. 5 / Fig. 9 intra-cluster analyses).
    """
    ids = list(server_ids) if server_ids is not None else sorted(day.polls)
    if alpha is None:
        alpha = alpha_times(day, ids)
    return {sid: episode_lengths(day.polls[sid], alpha) for sid in ids if sid in day.polls}


def all_inconsistencies(
    trace: CdnTrace, server_ids: Optional[Sequence[str]] = None
) -> np.ndarray:
    """Every inconsistency length in the trace (Fig. 3's sample)."""
    chunks: List[np.ndarray] = []
    for day in trace.days:
        per_server = day_inconsistencies(day, server_ids)
        chunks.extend(per_server.values())
    if not chunks:
        return np.empty(0)
    return np.concatenate(chunks)


def server_mean_inconsistencies(
    trace: CdnTrace, server_ids: Optional[Sequence[str]] = None
) -> Dict[str, List[float]]:
    """server_id -> per-day mean inconsistency length (Fig. 11 input)."""
    ids = list(server_ids) if server_ids is not None else trace.server_ids()
    result: Dict[str, List[float]] = {sid: [] for sid in ids}
    for day in trace.days:
        per_server = day_inconsistencies(day, ids)
        for sid in ids:
            lengths = per_server.get(sid)
            result[sid].append(float(lengths.mean()) if lengths is not None and lengths.size else 0.0)
    return result


def server_max_inconsistency(
    day: DayTrace,
    server_ids: Optional[Sequence[str]] = None,
    exclude_absent: bool = True,
) -> Dict[str, float]:
    """Per-server maximum inconsistency for one day (Fig. 12 input).

    ``exclude_absent`` drops servers with any absence, as the paper does
    to remove tree-dynamism effects.
    """
    ids = list(server_ids) if server_ids is not None else sorted(day.polls)
    if exclude_absent:
        ids = [sid for sid in ids if not day.polls[sid].had_absence]
    per_server = day_inconsistencies(day, ids)
    return {
        sid: (float(lengths.max()) if lengths.size else 0.0)
        for sid, lengths in per_server.items()
    }


def consistency_ratio(trace: CdnTrace, server_id: str) -> float:
    """Fig. 8's metric: ``1 - sum(inconsistency) / total trace time``."""
    total_inconsistency = 0.0
    total_time = 0.0
    for day in trace.days:
        series = day.polls.get(server_id)
        if series is None:
            continue
        alpha = alpha_times(day)
        total_inconsistency += float(episode_lengths(series, alpha).sum())
        total_time += day.session_length_s
    if is_zero_duration(total_time):
        raise KeyError("server %r has no trace data" % (server_id,))
    return 1.0 - total_inconsistency / total_time


def provider_inconsistencies(trace: CdnTrace) -> np.ndarray:
    """Staleness episodes of provider-served content (Fig. 7).

    The paper measures the origin pool the same way as the servers; here
    the provider series is scored against the day's ground-truth update
    times (the synthetic trace has a single origin series, so a
    cross-origin ``alpha`` is unavailable -- see DESIGN.md).
    """
    chunks: List[np.ndarray] = []
    for day in trace.days:
        series = day.provider_polls
        if series is None or not len(series):
            continue
        alpha = np.concatenate([[0.0], day.update_times])
        chunks.append(episode_lengths(series, alpha))
    if not chunks:
        return np.empty(0)
    return np.concatenate(chunks)


def inconsistent_server_fraction(day: DayTrace) -> float:
    """Average fraction of servers serving stale content per poll round
    (Fig. 4b).

    A server is stale at crawl time ``t`` if its displayed version's
    successor had already appeared in the trace by ``t``.
    """
    alpha = alpha_times(day)
    grid = np.arange(0.0, day.session_length_s, 10.0)
    #: newest version proven to exist by each grid time
    current = np.searchsorted(alpha[1:], grid, side="right")
    stale = np.zeros(grid.size, dtype=np.int64)
    total = np.zeros(grid.size, dtype=np.int64)
    for series in day.polls.values():
        if not len(series):
            continue
        idx = np.searchsorted(series.times, grid, side="right") - 1
        observed = idx >= 0
        versions = series.versions[np.maximum(idx, 0)]
        total += observed
        stale += observed & (versions < current)
    valid = (total > 0) & (current > 0)
    if not valid.any():
        return 0.0
    return float((stale[valid] / total[valid]).mean())
