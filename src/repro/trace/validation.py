"""Estimator validation against the synthesizer's ground truth.

The Section 3 estimators only see what a crawler could see; the
synthetic trace, however, carries the ground truth (true update times,
true absence intervals, the planted TTL).  This module quantifies each
estimator's bias, which is how we justify statements like "alpha is
close to the time of this update" (Section 3.1) *quantitatively*:

- :func:`alpha_bias` -- how late the first-appearance estimator runs
  behind the true update time;
- :func:`absence_detection` -- precision/recall and length error of the
  gap-based absence estimator (Fig. 10b's methodology);
- :func:`ttl_recovery_error` -- inferred minus planted TTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..metrics.stats import PercentileSummary, summarize
from .analysis import all_inconsistencies, alpha_times
from .records import CdnTrace
from .ttl_inference import infer_ttl

__all__ = [
    "alpha_bias",
    "AbsenceDetectionReport",
    "absence_detection",
    "ttl_recovery_error",
]


def alpha_bias(trace: CdnTrace) -> PercentileSummary:
    """Distribution of ``alpha(C_i) - true update time of C_i``.

    Positive by construction (nobody can observe an update before it
    happens); small relative to the TTL when many servers are crawled,
    which is the property the paper's estimators rely on.
    """
    gaps: List[float] = []
    for day in trace.days:
        alpha = alpha_times(day)
        truth = day.update_times
        observed = alpha[1 : truth.size + 1]
        finite = np.isfinite(observed)
        gaps.extend((observed[finite] - truth[finite]).tolist())
    if not gaps:
        raise ValueError("trace has no updates to score")
    return summarize(gaps)


@dataclass(frozen=True)
class AbsenceDetectionReport:
    """How well crawl gaps recover the true absence intervals."""

    true_absences: int
    detected: int
    spurious: int
    #: (estimated - true) length errors for matched absences.
    length_error: Optional[PercentileSummary]

    @property
    def recall(self) -> float:
        if self.true_absences == 0:
            return 1.0
        return self.detected / self.true_absences

    @property
    def precision(self) -> float:
        total = self.detected + self.spurious
        if total == 0:
            return 1.0
        return self.detected / total


def absence_detection(
    trace: CdnTrace, min_detectable_s: Optional[float] = None
) -> AbsenceDetectionReport:
    """Match gap-detected absences against the planted ones.

    Absences shorter than 1.5 poll intervals cannot be told apart from
    ordinary jitter and are excluded from the truth set by default.
    """
    threshold = 1.5 * trace.poll_interval_s
    min_detectable = min_detectable_s if min_detectable_s is not None else threshold
    true_count = 0
    detected = 0
    spurious = 0
    errors: List[float] = []
    for day in trace.days:
        for series in day.polls.values():
            # Recall is scored only on absences long enough to be
            # distinguishable from jitter; precision matches against
            # *every* true absence (a 8 s outage still explains a gap).
            scoreable = [
                index
                for index, (_, duration) in enumerate(series.absences)
                if duration >= min_detectable
            ]
            true_count += len(scoreable)
            if len(series) < 2:
                continue
            gaps = np.diff(series.times)
            gap_indices = np.nonzero(gaps > threshold)[0]
            matched_truth = set()
            for index in gap_indices:
                gap_start = float(series.times[index])
                gap_end = float(series.times[index + 1])
                gap_length = float(gaps[index] - trace.poll_interval_s)
                match = None
                for truth_index, (start, duration) in enumerate(series.absences):
                    if truth_index in matched_truth:
                        continue
                    if gap_start <= start + duration and start <= gap_end:
                        match = truth_index
                        break
                if match is None:
                    spurious += 1
                    continue
                matched_truth.add(match)
                if match in scoreable:
                    detected += 1
                    errors.append(gap_length - series.absences[match][1])
    return AbsenceDetectionReport(
        true_absences=true_count,
        detected=detected,
        spurious=spurious,
        length_error=summarize(errors) if errors else None,
    )


def ttl_recovery_error(trace: CdnTrace) -> float:
    """Inferred TTL minus the planted TTL (seconds)."""
    lengths = all_inconsistencies(trace)
    if lengths.size == 0:
        raise ValueError("trace has no inconsistency episodes")
    return infer_ttl(lengths).ttl_s - trace.ttl_s
