"""Multicast-tree existence tests (Section 3.5, Figs. 11-12).

Three negative checks, as in the paper:

1. **Static inter-cluster tree** (Fig. 11a-b): if clusters formed tree
   layers, their relative average inconsistency would be stable across
   days; instead it fluctuates freely.
2. **Static intra-cluster tree** (Fig. 11c-d): within a cluster, server
   ranks by daily average inconsistency would stay within a narrow band;
   instead they churn.
3. **Dynamic tree** (Fig. 12): with any tree, only second-layer servers
   are bounded by one TTL of staleness and deeper layers exceed it, so
   *most* randomly sampled servers should show max inconsistency > TTL;
   instead the large majority stay below it (76.7% / 86.9% in the
   paper), so servers must poll the provider directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .analysis import day_inconsistencies, server_max_inconsistency
from .clustering import geo_clusters
from .records import CdnTrace

__all__ = [
    "cluster_daily_means",
    "cluster_mean_spread",
    "rank_trajectories",
    "normalized_rank_churn",
    "max_inconsistency_fractions",
    "TreeEvidence",
    "tree_existence_analysis",
]


def cluster_daily_means(
    trace: CdnTrace, min_cluster_size: int = 3
) -> Dict[str, List[float]]:
    """cluster -> per-day mean inconsistency (Fig. 11a/b input)."""
    clusters = geo_clusters(trace, min_size=min_cluster_size)
    result: Dict[str, List[float]] = {name: [] for name in clusters}
    for day in trace.days:
        for name, members in clusters.items():
            per_server = day_inconsistencies(day, members)
            values = np.concatenate([v for v in per_server.values() if v.size]) if per_server else np.empty(0)
            result[name].append(float(values.mean()) if values.size else 0.0)
    return result


def cluster_mean_spread(daily_means: Dict[str, List[float]]) -> Dict[str, Tuple[float, float]]:
    """cluster -> (min, max) of its per-day means (Fig. 11a)."""
    return {
        name: (min(values), max(values))
        for name, values in daily_means.items()
        if values
    }


def rank_trajectories(
    trace: CdnTrace, cluster_members: Sequence[str], n_days: Optional[int] = None
) -> Dict[str, List[int]]:
    """server -> rank (1 = most consistent) per day within its cluster
    (Fig. 11c-d input)."""
    days = trace.days[:n_days] if n_days is not None else trace.days
    ranks: Dict[str, List[int]] = {sid: [] for sid in cluster_members}
    for day in days:
        per_server = day_inconsistencies(day, cluster_members)
        means = {
            sid: (float(v.mean()) if v.size else 0.0) for sid, v in per_server.items()
        }
        ordered = sorted(means, key=lambda sid: means[sid])
        for rank, sid in enumerate(ordered, start=1):
            ranks[sid].append(rank)
    return {sid: values for sid, values in ranks.items() if values}


def normalized_rank_churn(ranks: Dict[str, List[int]]) -> float:
    """Mean (max rank - min rank) / cluster size across servers.

    Near 0 => stable hierarchy (tree-like); large (>~0.3) => no static
    structure, which is what the paper observes.
    """
    if not ranks:
        raise ValueError("no rank trajectories")
    size = len(ranks)
    spreads = [
        (max(values) - min(values)) / size for values in ranks.values() if values
    ]
    return float(np.mean(spreads))


def max_inconsistency_fractions(
    trace: CdnTrace, ttl_s: Optional[float] = None
) -> List[float]:
    """Per day: fraction of (absence-free) servers whose *maximum*
    inconsistency stays below one TTL (Fig. 12)."""
    ttl = ttl_s if ttl_s is not None else trace.ttl_s
    fractions: List[float] = []
    for day in trace.days:
        maxima = server_max_inconsistency(day, exclude_absent=True)
        if not maxima:
            continue
        below = sum(1 for value in maxima.values() if value < ttl)
        fractions.append(below / len(maxima))
    return fractions


@dataclass(frozen=True)
class TreeEvidence:
    """Aggregated verdict of the three tree-existence tests."""

    rank_churn: float
    cluster_spread_ratio: float
    below_ttl_fraction: float
    #: The paper's conclusion for the measured CDN: no multicast tree.
    tree_likely: bool

    def summary(self) -> str:
        verdict = "consistent with" if self.tree_likely else "contradicts"
        return (
            "rank churn %.2f, cluster day-to-day spread %.2f, "
            "%.1f%% of servers bounded by one TTL -- evidence %s a multicast tree"
            % (
                self.rank_churn,
                self.cluster_spread_ratio,
                100.0 * self.below_ttl_fraction,
                verdict,
            )
        )


def tree_existence_analysis(
    trace: CdnTrace,
    min_cluster_size: int = 5,
    churn_threshold: float = 0.25,
    below_ttl_threshold: float = 0.5,
) -> TreeEvidence:
    """Run all three tests and produce a verdict.

    A multicast tree is judged *likely* only if ranks are stable (low
    churn) AND most servers exceed one TTL of max inconsistency; the
    paper's CDN fails both.
    """
    clusters = geo_clusters(trace, min_size=min_cluster_size)
    churns: List[float] = []
    for members in clusters.values():
        ranks = rank_trajectories(trace, members, n_days=min(7, trace.n_days))
        if len(ranks) >= min_cluster_size:
            churns.append(normalized_rank_churn(ranks))
    rank_churn = float(np.mean(churns)) if churns else 1.0

    daily = cluster_daily_means(trace, min_cluster_size=min_cluster_size)
    spreads = []
    for name, values in daily.items():
        arr = np.asarray(values, dtype=float)
        if arr.size >= 2 and arr.mean() > 0:
            spreads.append(float((arr.max() - arr.min()) / arr.mean()))
    spread_ratio = float(np.mean(spreads)) if spreads else 0.0

    fractions = max_inconsistency_fractions(trace)
    below_ttl = float(np.mean(fractions)) if fractions else 0.0

    tree_likely = rank_churn < churn_threshold and below_ttl < below_ttl_threshold
    return TreeEvidence(
        rank_churn=rank_churn,
        cluster_spread_ratio=spread_ratio,
        below_ttl_fraction=below_ttl,
        tree_likely=tree_likely,
    )
