"""Update workload generators.

The paper's content is live sports-game statistics: bursts of frequent
updates during play, long silences during breaks ("frequent updates
during some time (during the match), and maintain silence for a long
time (during the breaks)").  Section 5 notes the same burst/silence
pattern in online social networks (TAO-style post-comment bursts).

The trace's reference game (Jun 2 2012) had 306 snapshots over
2 h 26 m (8,760 s); :class:`LiveGameWorkload` reproduces those numbers
by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.rng import RandomStream

__all__ = [
    "LiveGameWorkload",
    "PoissonWorkload",
    "BurstSilenceWorkload",
    "FlashSaleWorkload",
    "AuctionWorkload",
]

#: Active-play windows of the default game: two halves plus a closing
#: period, separated by breaks (seconds from session start).
DEFAULT_PLAY_WINDOWS: Tuple[Tuple[float, float], ...] = (
    (60.0, 3060.0),     # first half
    (3960.0, 6960.0),   # second half (after a 15-minute break)
    (7560.0, 8700.0),   # closing period / stoppage coverage
)

DEFAULT_GAME_DURATION_S = 8760.0  # 2 h 26 m
DEFAULT_SNAPSHOT_COUNT = 306


def _require_finite(**values: float) -> None:
    """Reject NaN/inf knobs by name.  The thinning generators loop until
    ``t >= duration``; a NaN or infinite duration or rate would make
    that loop spin (and allocate) forever, so bad values must die at
    construction, not at generate time."""
    for name, value in values.items():
        if not math.isfinite(value):
            raise ValueError("%s must be finite, got %r" % (name, value))


@dataclass
class LiveGameWorkload:
    """Bursty live-game updates: active windows with updates, silent breaks."""

    n_updates: int = DEFAULT_SNAPSHOT_COUNT
    duration_s: float = DEFAULT_GAME_DURATION_S
    #: Active-play windows; ``None`` scales :data:`DEFAULT_PLAY_WINDOWS`
    #: proportionally to ``duration_s`` (handy for shortened CI runs).
    play_windows: Optional[Sequence[Tuple[float, float]]] = None
    #: Relative jitter of inter-update gaps inside a window (0 = evenly
    #: spaced, 1 = strongly irregular).
    burstiness: float = 0.8

    def __post_init__(self) -> None:
        if self.n_updates <= 0:
            raise ValueError("n_updates must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.play_windows is None:
            scale = self.duration_s / DEFAULT_GAME_DURATION_S
            self.play_windows = tuple(
                (a * scale, b * scale) for a, b in DEFAULT_PLAY_WINDOWS
            )
        windows = [(float(a), float(b)) for a, b in self.play_windows]
        for start, end in windows:
            if not 0 <= start < end <= self.duration_s:
                raise ValueError("invalid play window (%r, %r)" % (start, end))
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            if next_start < prev_end:
                raise ValueError("play windows must not overlap")
        if not 0.0 <= self.burstiness <= 1.0:
            raise ValueError("burstiness must be in [0, 1]")
        self.play_windows = tuple(windows)

    @property
    def active_time_s(self) -> float:
        return sum(end - start for start, end in self.play_windows)

    def generate(self, stream: RandomStream) -> List[float]:
        """Update times: exactly ``n_updates`` sorted timestamps.

        Updates are placed only inside play windows; positions within the
        active timeline are uniform with multiplicative jitter, giving a
        bursty but exact-count schedule.
        """
        active = self.active_time_s
        # Uniform positions on the *active* timeline, jittered.
        slot = active / self.n_updates
        positions = []
        for index in range(self.n_updates):
            base = (index + 0.5) * slot
            offset = stream.uniform(-0.5, 0.5) * slot * self.burstiness
            positions.append(min(active - 1e-9, max(0.0, base + offset)))
        positions.sort()
        return [self._active_to_wall(p) for p in positions]

    def _active_to_wall(self, active_pos: float) -> float:
        """Map a position on the concatenated-active timeline to wall time."""
        remaining = active_pos
        for start, end in self.play_windows:
            width = end - start
            if remaining < width:
                return start + remaining
            remaining -= width
        # Numerical edge: clamp to the end of the last window.
        return self.play_windows[-1][1]

    def is_break(self, t: float) -> bool:
        """``True`` when *t* falls outside every play window."""
        return not any(start <= t < end for start, end in self.play_windows)


@dataclass
class PoissonWorkload:
    """Memoryless updates at a constant rate (baseline workload)."""

    rate_per_s: float
    duration_s: float
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0 or self.duration_s <= 0:
            raise ValueError("rate and duration must be positive")

    def generate(self, stream: RandomStream) -> List[float]:
        times: List[float] = []
        t = self.start_s
        end = self.start_s + self.duration_s
        while True:
            t += stream.expovariate(self.rate_per_s)
            if t >= end:
                return times
            times.append(t)


@dataclass
class BurstSilenceWorkload:
    """OSN-style workload: short intense bursts separated by long silences.

    Models the TAO pattern the paper cites ([42], [43]): a post triggers
    a burst of comment updates, then the object goes quiet.
    """

    n_bursts: int = 10
    updates_per_burst: int = 20
    burst_gap_mean_s: float = 5.0
    silence_mean_s: float = 600.0
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_bursts <= 0 or self.updates_per_burst <= 0:
            raise ValueError("bursts and updates_per_burst must be positive")
        if self.burst_gap_mean_s <= 0 or self.silence_mean_s <= 0:
            raise ValueError("gap means must be positive")

    def generate(self, stream: RandomStream) -> List[float]:
        times: List[float] = []
        t = self.start_s
        for _ in range(self.n_bursts):
            t += stream.expovariate(1.0 / self.silence_mean_s)
            for _ in range(self.updates_per_burst):
                t += stream.expovariate(1.0 / self.burst_gap_mean_s)
                times.append(t)
        return times

    @property
    def expected_duration_s(self) -> float:
        per_burst = self.silence_mean_s + self.updates_per_burst * self.burst_gap_mean_s
        return self.start_s + self.n_bursts * per_burst


@dataclass
class FlashSaleWorkload:
    """E-commerce inventory updates around a flash sale.

    The paper's introduction names e-commerce as a live-content driver.
    The model: a low base update rate (price/stock corrections), then a
    sale window where the rate multiplies (inventory counts down with
    every purchase), then decay back to the base rate.
    """

    duration_s: float = 7200.0
    sale_start_s: float = 3600.0
    sale_duration_s: float = 900.0
    base_rate_per_s: float = 1.0 / 300.0
    sale_rate_multiplier: float = 60.0

    def __post_init__(self) -> None:
        _require_finite(
            duration_s=self.duration_s,
            sale_start_s=self.sale_start_s,
            sale_duration_s=self.sale_duration_s,
            base_rate_per_s=self.base_rate_per_s,
            sale_rate_multiplier=self.sale_rate_multiplier,
        )
        if self.duration_s <= 0:
            raise ValueError(
                "duration_s must be positive, got %r" % self.duration_s
            )
        if self.sale_duration_s <= 0:
            raise ValueError(
                "sale_duration_s must be positive, got %r" % self.sale_duration_s
            )
        if not 0 <= self.sale_start_s <= self.duration_s:
            raise ValueError(
                "sale_start_s must be within [0, duration_s=%r], got %r"
                % (self.duration_s, self.sale_start_s)
            )
        if self.base_rate_per_s <= 0:
            raise ValueError(
                "base_rate_per_s must be positive, got %r" % self.base_rate_per_s
            )
        if self.sale_rate_multiplier < 1:
            raise ValueError(
                "sale_rate_multiplier must be >= 1, got %r"
                % self.sale_rate_multiplier
            )

    def rate_at(self, t: float) -> float:
        """Instantaneous update rate (piecewise constant)."""
        sale_end = self.sale_start_s + self.sale_duration_s
        if self.sale_start_s <= t < sale_end:
            return self.base_rate_per_s * self.sale_rate_multiplier
        return self.base_rate_per_s

    def generate(self, stream: RandomStream) -> List[float]:
        """Thinned inhomogeneous-Poisson update times."""
        peak = self.base_rate_per_s * self.sale_rate_multiplier
        times: List[float] = []
        t = 0.0
        while True:
            t += stream.expovariate(peak)
            if t >= self.duration_s:
                return times
            if stream.random() < self.rate_at(t) / peak:
                times.append(t)


@dataclass
class AuctionWorkload:
    """Online-auction bid updates: sparse early bidding, then sniping.

    Bid arrivals accelerate toward the closing time (the classic
    last-minute sniping pattern): the rate grows linearly from
    ``base_rate_per_s`` to ``closing_rate_per_s`` over the auction.
    """

    duration_s: float = 3600.0
    base_rate_per_s: float = 1.0 / 240.0
    closing_rate_per_s: float = 0.5

    def __post_init__(self) -> None:
        _require_finite(
            duration_s=self.duration_s,
            base_rate_per_s=self.base_rate_per_s,
            closing_rate_per_s=self.closing_rate_per_s,
        )
        if self.duration_s <= 0:
            raise ValueError(
                "duration_s must be positive, got %r" % self.duration_s
            )
        if not 0 < self.base_rate_per_s <= self.closing_rate_per_s:
            raise ValueError(
                "need 0 < base_rate_per_s <= closing_rate_per_s, got "
                "base_rate_per_s=%r, closing_rate_per_s=%r"
                % (self.base_rate_per_s, self.closing_rate_per_s)
            )

    def rate_at(self, t: float) -> float:
        frac = min(1.0, max(0.0, t / self.duration_s))
        return self.base_rate_per_s + frac * (
            self.closing_rate_per_s - self.base_rate_per_s
        )

    def generate(self, stream: RandomStream) -> List[float]:
        times: List[float] = []
        t = 0.0
        peak = self.closing_rate_per_s
        while True:
            t += stream.expovariate(peak)
            if t >= self.duration_s:
                return times
            if stream.random() < self.rate_at(t) / peak:
                times.append(t)
