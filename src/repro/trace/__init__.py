"""Section 3 reproduction: trace synthesis, crawling, and analysis."""

from .analysis import (
    all_inconsistencies,
    alpha_times,
    consistency_ratio,
    day_inconsistencies,
    episode_lengths,
    inconsistent_server_fraction,
    provider_inconsistencies,
    server_max_inconsistency,
    server_mean_inconsistencies,
)
from .causes import (
    DistanceAnalysis,
    IspClusterResult,
    absence_impact,
    consistency_vs_distance,
    inconsistency_around_absences,
    isp_inconsistency_analysis,
    observed_absence_lengths,
    provider_inconsistency_sample,
    provider_response_times,
)
from .clustering import distance_bands, geo_clusters, isp_clusters
from .crawler import ClockModel, SkewEstimate
from .records import CdnTrace, DayTrace, PollSeries, ServerInfo
from .synthesize import (
    SynthesisConfig,
    TraceSynthesizer,
    UserDaySeries,
    UserTrace,
    synthesize_trace,
)
from .tree_inference import (
    TreeEvidence,
    cluster_daily_means,
    cluster_mean_spread,
    max_inconsistency_fractions,
    normalized_rank_churn,
    rank_trajectories,
    tree_existence_analysis,
)
from .ttl_inference import (
    TtlInference,
    deviation_curve,
    infer_ttl,
    refinement_deviation,
    theory_rmse,
)
from .validation import (
    AbsenceDetectionReport,
    absence_detection,
    alpha_bias,
    ttl_recovery_error,
)
from .user_view import (
    all_continuous_times,
    continuous_times,
    daily_inconsistent_server_fractions,
    inconsistency_vs_poll_interval,
    observation_flags,
    redirected_fractions,
)
from .workload import BurstSilenceWorkload, LiveGameWorkload, PoissonWorkload

__all__ = [
    # records
    "CdnTrace",
    "DayTrace",
    "PollSeries",
    "ServerInfo",
    # synthesis
    "SynthesisConfig",
    "TraceSynthesizer",
    "synthesize_trace",
    "UserTrace",
    "UserDaySeries",
    "ClockModel",
    "SkewEstimate",
    # workloads
    "LiveGameWorkload",
    "PoissonWorkload",
    "BurstSilenceWorkload",
    # analysis
    "alpha_times",
    "episode_lengths",
    "day_inconsistencies",
    "all_inconsistencies",
    "server_mean_inconsistencies",
    "server_max_inconsistency",
    "consistency_ratio",
    "provider_inconsistencies",
    "inconsistent_server_fraction",
    # clustering
    "geo_clusters",
    "isp_clusters",
    "distance_bands",
    # ttl inference
    "TtlInference",
    "infer_ttl",
    "deviation_curve",
    "refinement_deviation",
    "theory_rmse",
    # user view
    "redirected_fractions",
    "daily_inconsistent_server_fractions",
    "observation_flags",
    "continuous_times",
    "all_continuous_times",
    "inconsistency_vs_poll_interval",
    # causes
    "provider_inconsistency_sample",
    "provider_response_times",
    "DistanceAnalysis",
    "consistency_vs_distance",
    "IspClusterResult",
    "isp_inconsistency_analysis",
    "observed_absence_lengths",
    "absence_impact",
    "inconsistency_around_absences",
    # tree inference
    "AbsenceDetectionReport",
    "absence_detection",
    "alpha_bias",
    "ttl_recovery_error",
    "TreeEvidence",
    "tree_existence_analysis",
    "cluster_daily_means",
    "cluster_mean_spread",
    "rank_trajectories",
    "normalized_rank_churn",
    "max_inconsistency_fractions",
]
