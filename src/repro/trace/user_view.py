"""User-perspective consistency analyses (Section 3.3, Fig. 4).

A user observes *self-inconsistency* when a visit returns content older
than something they have already seen (score going backwards).  From
each user's observation stream we derive:

- the fraction of visits redirected to a different server (Fig. 4a),
- continuous consistency / inconsistency durations (Fig. 4c-d),
- how continuous inconsistency scales with the polling period (Fig. 4e).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..metrics.stats import PercentileSummary, summarize
from .analysis import inconsistent_server_fraction
from .records import CdnTrace
from .synthesize import UserDaySeries, UserTrace

__all__ = [
    "redirected_fractions",
    "daily_inconsistent_server_fractions",
    "observation_flags",
    "continuous_times",
    "all_continuous_times",
    "inconsistency_vs_poll_interval",
]


def redirected_fractions(user_trace: UserTrace) -> List[float]:
    """Per-user fraction of visits served by a different server than the
    previous visit (the Fig. 4a sample)."""
    fractions: List[float] = []
    for days in user_trace.users.values():
        switches = 0
        transitions = 0
        for series in days:
            ids = series.server_ids
            transitions += max(0, len(ids) - 1)
            switches += sum(1 for a, b in zip(ids, ids[1:]) if a != b)
        fractions.append(switches / transitions if transitions else 0.0)
    return fractions


def daily_inconsistent_server_fractions(trace: CdnTrace) -> List[float]:
    """Per-day average fraction of stale servers (Fig. 4b; paper ~11%)."""
    return [inconsistent_server_fraction(day) for day in trace.days]


def observation_flags(series: UserDaySeries) -> np.ndarray:
    """Boolean array: ``True`` where a visit shows self-inconsistency
    (version strictly below the user's running maximum)."""
    versions = np.asarray(series.versions, dtype=np.int64)
    if versions.size == 0:
        return np.zeros(0, dtype=bool)
    running = np.maximum.accumulate(versions)
    previous = np.concatenate([[np.int64(-1)], running[:-1]])
    return versions < previous


def continuous_times(series: UserDaySeries) -> Tuple[List[float], List[float]]:
    """(consistency durations, inconsistency durations) for one stream.

    A continuous inconsistency time runs from the first inconsistent
    observation to the next consistent one; a continuous consistency
    time runs from a consistent observation to the next inconsistent one
    (runs truncated by the end of the session are dropped, since their
    durations are unknown).
    """
    flags = observation_flags(series)
    times = np.asarray(series.times, dtype=float)
    consistency: List[float] = []
    inconsistency: List[float] = []
    if flags.size == 0:
        return consistency, inconsistency
    run_start = 0
    for i in range(1, flags.size):
        if flags[i] != flags[run_start]:
            duration = float(times[i] - times[run_start])
            if flags[run_start]:
                inconsistency.append(duration)
            else:
                consistency.append(duration)
            run_start = i
    return consistency, inconsistency


def all_continuous_times(user_trace: UserTrace) -> Tuple[List[float], List[float]]:
    """Pooled continuous (consistency, inconsistency) durations."""
    consistency: List[float] = []
    inconsistency: List[float] = []
    for days in user_trace.users.values():
        for series in days:
            cons, incons = continuous_times(series)
            consistency.extend(cons)
            inconsistency.extend(incons)
    return consistency, inconsistency


def inconsistency_vs_poll_interval(
    make_user_trace: Callable[[float], UserTrace],
    intervals: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
) -> Dict[float, PercentileSummary]:
    """Fig. 4e: continuous-inconsistency percentiles vs polling period.

    ``make_user_trace(interval)`` must produce a :class:`UserTrace`
    whose users poll every ``interval`` seconds (e.g. a closure over
    :meth:`TraceSynthesizer.synthesize_users`).
    """
    results: Dict[float, PercentileSummary] = {}
    for interval in intervals:
        _, inconsistency = all_continuous_times(make_user_trace(interval))
        if not inconsistency:
            # No observed inconsistency at this polling rate: report an
            # all-zero summary rather than failing.
            results[interval] = PercentileSummary(0.0, 0.0, 0.0, 0.0, 0)
        else:
            results[interval] = summarize(inconsistency)
    return results
