"""Trace data model.

A :class:`CdnTrace` holds everything the Section 3 analyses consume:

- per server: static metadata (location, ISP, geographic cluster,
  distance to the provider);
- per (day, server): the crawler's poll series -- timestamps and the
  snapshot version observed at each poll (numpy arrays, one poll per
  ~10 s as in the paper) -- plus any absence intervals;
- per day: the ground-truth update times of that day's game and the
  provider-side poll series (Fig. 7 / Fig. 10a).

The estimators deliberately consume only what a real crawl could
observe (timestamps + snapshot identities); ground truth is kept solely
for validating the estimators themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..network.geo import GeoPoint

__all__ = ["ServerInfo", "PollSeries", "DayTrace", "CdnTrace"]


@dataclass(frozen=True)
class ServerInfo:
    """Static metadata for one crawled content server."""

    server_id: str
    point: GeoPoint
    isp: str
    geo_cluster: str
    distance_to_provider_km: float


@dataclass
class PollSeries:
    """One server's poll series for one day."""

    times: np.ndarray      # seconds from session start, sorted
    versions: np.ndarray   # snapshot index observed at each poll
    #: (start, duration) absence intervals (no responses inside them).
    absences: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.versions = np.asarray(self.versions, dtype=np.int64)
        if self.times.shape != self.versions.shape:
            raise ValueError("times and versions must have equal length")
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ValueError("poll times must be sorted")

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def had_absence(self) -> bool:
        return bool(self.absences)

    def version_at(self, t: float) -> int:
        """Observed version at the last poll at or before *t*."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return 0
        return int(self.versions[idx])


@dataclass
class DayTrace:
    """All observations from one crawl day (one game)."""

    day_index: int
    session_length_s: float
    #: Ground truth: update times of that day's game.
    update_times: np.ndarray
    #: server_id -> the crawler's poll series.
    polls: Dict[str, PollSeries] = field(default_factory=dict)
    #: Provider-side poll series (near-fresh; Fig. 7).
    provider_polls: Optional[PollSeries] = None
    #: Response times of provider requests, seconds (Fig. 10a).
    provider_response_times: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=float)
    )

    def __post_init__(self) -> None:
        self.update_times = np.asarray(self.update_times, dtype=float)
        self.provider_response_times = np.asarray(
            self.provider_response_times, dtype=float
        )

    @property
    def n_updates(self) -> int:
        return int(self.update_times.size)


@dataclass
class CdnTrace:
    """A complete synthesized (or loaded) multi-day CDN crawl."""

    servers: Dict[str, ServerInfo]
    days: List[DayTrace]
    poll_interval_s: float = 10.0
    ttl_s: float = 60.0  # the planted TTL; estimators must *recover* it

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def n_days(self) -> int:
        return len(self.days)

    def server_ids(self) -> List[str]:
        return sorted(self.servers)

    def servers_by_cluster(self) -> Dict[str, List[str]]:
        """Geographic cluster name -> member server ids."""
        clusters: Dict[str, List[str]] = {}
        for server_id, info in self.servers.items():
            clusters.setdefault(info.geo_cluster, []).append(server_id)
        for members in clusters.values():
            members.sort()
        return clusters

    def servers_by_isp(self) -> Dict[str, List[str]]:
        """ISP name -> member server ids."""
        isps: Dict[str, List[str]] = {}
        for server_id, info in self.servers.items():
            isps.setdefault(info.isp, []).append(server_id)
        for members in isps.values():
            members.sort()
        return isps

    def total_polls(self) -> int:
        return sum(len(series) for day in self.days for series in day.polls.values())

    # ------------------------------------------------------------------
    # (de)serialisation -- JSON, for the examples and offline inspection
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "poll_interval_s": self.poll_interval_s,
            "ttl_s": self.ttl_s,
            "servers": {
                sid: {
                    "lat": info.point.lat,
                    "lon": info.point.lon,
                    "isp": info.isp,
                    "geo_cluster": info.geo_cluster,
                    "distance_km": info.distance_to_provider_km,
                }
                for sid, info in self.servers.items()
            },
            "days": [
                {
                    "day_index": day.day_index,
                    "session_length_s": day.session_length_s,
                    "update_times": day.update_times.tolist(),
                    "provider_response_times": day.provider_response_times.tolist(),
                    "provider_polls": _series_to_dict(day.provider_polls),
                    "polls": {
                        sid: _series_to_dict(series)
                        for sid, series in day.polls.items()
                    },
                }
                for day in self.days
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CdnTrace":
        servers = {
            sid: ServerInfo(
                server_id=sid,
                point=GeoPoint(raw["lat"], raw["lon"]),
                isp=raw["isp"],
                geo_cluster=raw["geo_cluster"],
                distance_to_provider_km=raw["distance_km"],
            )
            for sid, raw in data["servers"].items()
        }
        days = []
        for raw_day in data["days"]:
            day = DayTrace(
                day_index=raw_day["day_index"],
                session_length_s=raw_day["session_length_s"],
                update_times=np.asarray(raw_day["update_times"], dtype=float),
                provider_polls=_series_from_dict(raw_day.get("provider_polls")),
                provider_response_times=np.asarray(
                    raw_day.get("provider_response_times", []), dtype=float
                ),
            )
            day.polls = {
                sid: _series_from_dict(raw)
                for sid, raw in raw_day["polls"].items()
            }
            days.append(day)
        return cls(
            servers=servers,
            days=days,
            poll_interval_s=data.get("poll_interval_s", 10.0),
            ttl_s=data.get("ttl_s", 60.0),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "CdnTrace":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def _series_to_dict(series: Optional[PollSeries]) -> Optional[dict]:
    if series is None:
        return None
    return {
        "times": series.times.tolist(),
        "versions": series.versions.tolist(),
        "absences": list(series.absences),
    }


def _series_from_dict(raw: Optional[dict]) -> Optional[PollSeries]:
    if raw is None:
        return None
    return PollSeries(
        times=np.asarray(raw["times"], dtype=float),
        versions=np.asarray(raw["versions"], dtype=np.int64),
        absences=[tuple(item) for item in raw.get("absences", [])],
    )
