"""Inferring the CDN's TTL from the trace (Section 3.4.1, Fig. 6).

Two estimators, exactly as in the paper:

1. **Recursive refinement** (Fig. 6a).  If TTL were the sole cause of
   inconsistency, lengths would be Uniform[0, TTL] with mean TTL/2.
   For a candidate TTL ``T'``: compute ``E''`` as the mean of lengths
   ``<= T'`` and ``T'' = 2 E''``; the deviation ``|T'' - T'| / T'`` is
   minimised at the true TTL.

2. **Theory-vs-trace CDF** (Fig. 6b).  For a candidate TTL, drop lengths
   above it and compare the remaining empirical CDF against the
   Uniform[0, TTL] CDF by RMSE; the true TTL gives the smallest error
   (paper: RMSE 0.0462 at 60 s vs 0.0955 at 80 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..metrics.stats import rmse_against_uniform

__all__ = [
    "refinement_deviation",
    "deviation_curve",
    "infer_ttl",
    "theory_rmse",
    "TtlInference",
]


def refinement_deviation(lengths: Sequence[float], candidate_ttl: float) -> float:
    """One refinement step's relative deviation for a candidate TTL."""
    if candidate_ttl <= 0:
        raise ValueError("candidate_ttl must be positive")
    arr = np.asarray(list(lengths), dtype=float)
    kept = arr[arr <= candidate_ttl]
    if kept.size == 0:
        return float("inf")
    refined = 2.0 * float(kept.mean())
    return abs(refined - candidate_ttl) / candidate_ttl


def deviation_curve(
    lengths: Sequence[float], candidates: Sequence[float]
) -> List[Tuple[float, float]]:
    """(candidate TTL, deviation) pairs -- the Fig. 6a curve."""
    arr = np.asarray(list(lengths), dtype=float)
    return [(float(c), refinement_deviation(arr, float(c))) for c in candidates]


@dataclass(frozen=True)
class TtlInference:
    """Result of the TTL inference."""

    ttl_s: float
    deviation: float
    curve: Tuple[Tuple[float, float], ...]


def infer_ttl(
    lengths: Sequence[float],
    candidates: Sequence[float] = tuple(range(40, 81, 2)),
) -> TtlInference:
    """The candidate TTL with the smallest refinement deviation."""
    curve = deviation_curve(lengths, candidates)
    best_ttl, best_dev = min(curve, key=lambda pair: pair[1])
    return TtlInference(ttl_s=best_ttl, deviation=best_dev, curve=tuple(curve))


def theory_rmse(lengths: Sequence[float], candidate_ttl: float) -> float:
    """Fig. 6b: RMSE between trace CDF (truncated at the candidate) and
    the Uniform[0, candidate] CDF."""
    arr = np.asarray(list(lengths), dtype=float)
    kept = arr[arr <= candidate_ttl]
    if kept.size == 0:
        return float("inf")
    return rmse_against_uniform(kept, candidate_ttl)
